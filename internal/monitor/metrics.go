package monitor

import (
	"fmt"
	"io"
	"strconv"
)

// WriteMetrics renders the Prometheus text exposition of the monitor's
// state: the live ingest counters (read lock-free from the tail loop's
// atomics) and the study-level figures of the latest snapshot. It is
// hand-rolled — the exposition format is a dozen lines of text and the
// repo takes no dependencies — and holds no lock across the render:
// everything study-derived comes from one immutable epoch loaded once.
func (m *Monitor) WriteMetrics(w io.Writer) {
	st := m.Stats()
	counter(w, "unprotected_ingest_lines_total",
		"Log lines parsed and ingested by the tail loop.", float64(st.Lines.Load()))
	counter(w, "unprotected_ingest_rounds_total",
		"Completed tail poll rounds.", float64(st.Rounds.Load()))
	gauge(w, "unprotected_tailed_files",
		"Node log files currently being tailed.", float64(st.Files.Load()))
	counter(w, "unprotected_tail_truncations_total",
		"Tailed files whose size regressed (truncation or rotation), forcing a reopen from zero.",
		float64(st.Truncations.Load()))
	counter(w, "unprotected_tail_reopens_total",
		"Tail descriptors reopened after an fd-budget eviction.", float64(st.Reopens.Load()))

	snap := m.Snapshot()
	if snap == nil {
		gauge(w, "unprotected_snapshot_epoch",
			"Epoch of the published study snapshot (0 before the first poll round).", 0)
		return
	}
	r := snap.Report
	gauge(w, "unprotected_snapshot_epoch",
		"Epoch of the published study snapshot (0 before the first poll round).", float64(snap.Epoch))
	counter(w, "unprotected_raw_logs_total",
		"Raw ERROR records observed across the fleet (§III-A).", float64(r.Headline.RawLogs))
	counter(w, "unprotected_independent_faults_total",
		"Independent memory faults after §II-C collapse.", float64(r.Headline.IndependentFaults))
	gauge(w, "unprotected_fault_rate_per_tbh",
		"Independent faults per terabyte-hour of scanned memory.", r.Headline.FaultsPerTBh)
	gauge(w, "unprotected_multibit_fraction",
		"Fraction of independent faults corrupting more than one bit.",
		rate(float64(r.Headline.MultiBitFaults), float64(r.Headline.IndependentFaults)))
	gauge(w, "unprotected_node_hours_total",
		"Monitored node-hours accumulated (§II-B accounting).", r.Headline.NodeHours)
	gauge(w, "unprotected_tbh_total",
		"Memory scanned, in terabyte-hours.", r.Headline.TotalTBh)

	fmt.Fprintf(w, "# HELP unprotected_regime_days Days per system regime (§III-I).\n")
	fmt.Fprintf(w, "# TYPE unprotected_regime_days gauge\n")
	fmt.Fprintf(w, "unprotected_regime_days{regime=\"normal\"} %s\n", num(float64(r.Regimes.NormalDays)))
	fmt.Fprintf(w, "unprotected_regime_days{regime=\"degraded\"} %s\n", num(float64(r.Regimes.DegradedDays)))
	fmt.Fprintf(w, "# HELP unprotected_regime_errors Errors per system regime (§III-I).\n")
	fmt.Fprintf(w, "# TYPE unprotected_regime_errors gauge\n")
	fmt.Fprintf(w, "unprotected_regime_errors{regime=\"normal\"} %s\n", num(float64(r.Regimes.NormalErrors)))
	fmt.Fprintf(w, "unprotected_regime_errors{regime=\"degraded\"} %s\n", num(float64(r.Regimes.DegradedErrors)))

	fmt.Fprintf(w, "# HELP unprotected_worst_node_raw_share Share of all raw logs produced by the single worst node.\n")
	fmt.Fprintf(w, "# TYPE unprotected_worst_node_raw_share gauge\n")
	if r.Headline.TopRawNode != "" {
		fmt.Fprintf(w, "unprotected_worst_node_raw_share{node=%q} %s\n",
			r.Headline.TopRawNode, num(r.Headline.TopNodeRawShare))
	} else {
		fmt.Fprintf(w, "unprotected_worst_node_raw_share 0\n")
	}
}

// counter emits one counter family with a single unlabelled sample.
func counter(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, num(v))
}

// gauge emits one gauge family with a single unlabelled sample.
func gauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, num(v))
}

// num formats a sample value the way Prometheus expects.
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
