package scanner

import (
	"testing"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/rng"
	"unprotected/internal/timebase"
)

func TestAllocateBackoff(t *testing.T) {
	if got := Allocate(AllocTarget); got != AllocTarget {
		t.Fatalf("full allocation: %d", got)
	}
	// 100 MB leaked: backoff lands on the first 10 MB step that fits.
	avail := int64(AllocTarget) - 100<<20
	got := Allocate(avail)
	if got != avail {
		t.Fatalf("leak-aligned allocation: got %d, want %d", got, avail)
	}
	// Non-aligned shortfall: next step down.
	got = Allocate(int64(AllocTarget) - 5<<20)
	if got != int64(AllocTarget)-10<<20 {
		t.Fatalf("unaligned backoff: %d", got)
	}
	if Allocate(0) != 0 || Allocate(-5) != 0 {
		t.Fatal("impossible allocation should be 0")
	}
	// The backoff walks all the way down: with only 3 MB available it
	// lands on the final sub-10MB step (3 GB mod 10 MB ≈ 2 MB), which the
	// paper's loop would successfully allocate.
	if got := Allocate(3 << 20); got <= 0 || got > 3<<20 {
		t.Fatalf("tiny availability: got %d", got)
	}
}

func TestLeakModel(t *testing.T) {
	l := DefaultLeakModel()
	r := rng.New(9)
	var sum float64
	const n = 20000
	fails := 0
	for i := 0; i < n; i++ {
		a := l.Available(r)
		if a == 0 {
			fails++
			continue
		}
		sum += float64(a)
	}
	mean := sum / float64(n-fails) / float64(1<<30)
	if mean < 2.7 || mean > 3.01 {
		t.Fatalf("mean available %v GiB, want ~2.9", mean)
	}
	if fails == 0 || float64(fails)/n > 0.01 {
		t.Fatalf("allocfail rate %v", float64(fails)/n)
	}
}

func TestModes(t *testing.T) {
	// Flip mode: write(i) is the opposite phase of expected(i).
	if FlipMode.Expected(0) != 0 || FlipMode.Expected(1) != 0xFFFFFFFF {
		t.Fatal("flip expected sequence broken")
	}
	for i := int64(0); i < 10; i++ {
		if FlipMode.Write(i) != FlipMode.Expected(i+1) {
			t.Fatal("write(i) must equal expected(i+1)")
		}
		if CounterMode.Write(i) != CounterMode.Expected(i+1) {
			t.Fatal("counter write/expected inconsistent")
		}
	}
	// Counter mode starts at 0x00000001.
	if CounterMode.Write(0) != 1 {
		t.Fatalf("counter first write %x", CounterMode.Write(0))
	}
	if FlipMode.String() != "flip" || CounterMode.String() != "counter" {
		t.Fatal("mode names")
	}
}

func TestIterDuration(t *testing.T) {
	d := IterDuration(3 << 30)
	if d < 5 || d > 30 {
		t.Fatalf("3GB pass duration %d s, want ~11", d)
	}
	if IterDuration(1) < 1 {
		t.Fatal("duration must be at least 1s")
	}
}

// collectLogs runs a scanner session and gathers records.
func collectLogs(t *testing.T, dev *dram.Device, mode Mode, iters int64,
	perturb func(int64, timebase.T, *dram.Device)) []eventlog.Record {
	t.Helper()
	var recs []eventlog.Record
	host := cluster.NodeID{Blade: 7, SoC: 7}
	s := New(host, dev, mode, func(r eventlog.Record) { recs = append(recs, r) }, rng.New(21))
	s.Perturb = perturb
	s.Run(timebase.T(90*86400), iters, nil) // day 90: telemetry active
	return recs
}

func TestScannerCleanRun(t *testing.T) {
	dev := dram.NewDevice(1, 4096, nil)
	recs := collectLogs(t, dev, FlipMode, 6, nil)
	if len(recs) != 2 {
		t.Fatalf("clean run should log START and END only, got %d records", len(recs))
	}
	if recs[0].Kind != eventlog.KindStart || recs[1].Kind != eventlog.KindEnd {
		t.Fatal("record kinds wrong")
	}
	if recs[0].AllocBytes != 4096*4 {
		t.Fatalf("alloc bytes %d", recs[0].AllocBytes)
	}
}

func TestScannerDetectsStrike(t *testing.T) {
	dev := dram.NewDevice(1, 4096, nil)
	// Find an observable (true-polarity) bit of word 100.
	bit := -1
	for b := 0; b < dram.WordBits; b++ {
		if dev.Polarity.IsTrueCell(1, 100, b) {
			bit = b
			break
		}
	}
	if bit < 0 {
		t.Fatal("no true cell")
	}
	struck := false
	recs := collectLogs(t, dev, FlipMode, 6, func(iter int64, at timebase.T, d *dram.Device) {
		// Strike during the 0xFFFFFFFF phase: iteration 1 checks
		// expected(1)=0xFFFFFFFF, so perturb before that check.
		if iter == 1 && !struck {
			struck = true
			d.Strike(100, dram.BitSetOf(bit))
		}
	})
	var errs []eventlog.Record
	for _, r := range recs {
		if r.Kind == eventlog.KindError {
			errs = append(errs, r)
		}
	}
	if len(errs) != 1 {
		t.Fatalf("expected exactly 1 ERROR, got %d", len(errs))
	}
	e := errs[0]
	if e.Expected != 0xFFFFFFFF {
		t.Fatalf("expected value %08x", e.Expected)
	}
	if e.Actual != 0xFFFFFFFF&^(1<<uint(bit)) {
		t.Fatalf("actual value %08x (bit %d)", e.Actual, bit)
	}
	addr, err := dram.AddrOfVirt(e.VAddr)
	if err != nil || addr != 100 {
		t.Fatalf("vaddr maps to %v (%v)", addr, err)
	}
	// Transient: the rewrite repaired it; no further errors (checked above).
}

func TestScannerWeakCellRepeats(t *testing.T) {
	dev := dram.NewDevice(1, 512, nil)
	bit := -1
	for b := 0; b < dram.WordBits; b++ {
		if dev.Polarity.IsTrueCell(1, 42, b) {
			bit = b
			break
		}
	}
	dev.AddWeakCell(&dram.WeakCell{Addr: 42, Bit: bit, LeakProb: 1, Active: true})
	recs := collectLogs(t, dev, FlipMode, 10, nil)
	errs := 0
	for _, r := range recs {
		if r.Kind == eventlog.KindError {
			errs++
			if r.Actual != 0xFFFFFFFF&^(1<<uint(bit)) {
				t.Fatalf("weak cell produced unexpected value %08x", r.Actual)
			}
		}
	}
	// The cell leaks every pass but is only observable on 0xFFFFFFFF
	// checks: 5 of 10 iterations.
	if errs != 5 {
		t.Fatalf("weak-cell errors = %d, want 5", errs)
	}
}

func TestScannerCounterMode(t *testing.T) {
	dev := dram.NewDevice(1, 256, nil)
	recs := collectLogs(t, dev, CounterMode, 5, func(iter int64, at timebase.T, d *dram.Device) {
		if iter == 3 {
			// Corrupt bit 0 of word 9 during iteration 3 (stored value 4).
			d.Write(9, d.Read(9)^1)
		}
	})
	var errs []eventlog.Record
	for _, r := range recs {
		if r.Kind == eventlog.KindError {
			errs = append(errs, r)
		}
	}
	if len(errs) != 1 {
		t.Fatalf("errors = %d", len(errs))
	}
	// Perturb runs before iteration 3's check: stored value is write(2)=3,
	// so the check against expected(3)=3 sees bit 0 flipped to 2.
	if errs[0].Expected != 3 || errs[0].Actual != 2 {
		t.Fatalf("counter corruption: expected=%x actual=%x", errs[0].Expected, errs[0].Actual)
	}
}

func TestScannerStopsOnSignal(t *testing.T) {
	dev := dram.NewDevice(1, 128, nil)
	stop := make(chan struct{})
	close(stop) // SIGTERM before the first pass
	var recs []eventlog.Record
	s := New(cluster.NodeID{Blade: 1, SoC: 2}, dev, FlipMode,
		func(r eventlog.Record) { recs = append(recs, r) }, rng.New(5))
	s.Run(0, 0, stop)
	if len(recs) != 2 || recs[1].Kind != eventlog.KindEnd {
		t.Fatalf("stop handling: %v", recs)
	}
}

// TestAllocateMatchesBackoffLoop sweeps the closed-form Allocate against
// the paper's literal retry loop: same result for every availability,
// including the sub-10MB tail where the loop's last step goes negative.
func TestAllocateMatchesBackoffLoop(t *testing.T) {
	ref := func(available int64) int64 {
		if available <= 0 {
			return 0
		}
		alloc := int64(AllocTarget)
		for alloc > 0 && alloc > available {
			alloc -= AllocStep
		}
		if alloc < 0 {
			return 0
		}
		return alloc
	}
	check := func(avail int64) {
		t.Helper()
		if got, want := Allocate(avail), ref(avail); got != want {
			t.Fatalf("Allocate(%d) = %d, want %d", avail, got, want)
		}
	}
	for _, avail := range []int64{-1, 0, 1, AllocStep - 1, AllocStep, AllocStep + 1,
		AllocTarget % AllocStep, AllocTarget%AllocStep - 1, AllocTarget%AllocStep + 1,
		AllocTarget - 1, AllocTarget, AllocTarget + 1, AllocTarget + AllocStep} {
		check(avail)
	}
	for avail := int64(-AllocStep); avail < AllocTarget+2*AllocStep; avail += 999_937 {
		check(avail)
	}
}

// referenceRun is the pre-block-scan Run loop (read/compare/write one word
// at a time), kept as the differential oracle for the block-compare path.
func referenceRun(s *Scanner, start timebase.T, maxIters int64) int {
	alloc := int64(s.Device.Len()) * 4
	s.Emit(eventlog.Record{
		Kind: eventlog.KindStart, At: start, Host: s.Host,
		AllocBytes: alloc, TempC: s.temp(start),
	})
	s.Device.Fill(s.Mode.Expected(0))
	iterDur := IterDuration(alloc)
	errs := 0
	at := start
	for iter := int64(0); iter < maxIters; iter++ {
		if s.Perturb != nil {
			s.Perturb(iter, at, s.Device)
		}
		s.Device.Tick(s.rng)
		expected := s.Mode.Expected(iter)
		write := s.Mode.Write(iter)
		for a := 0; a < s.Device.Len(); a++ {
			addr := dram.Addr(a)
			actual := s.Device.Read(addr)
			if actual != expected {
				errs++
				s.Emit(eventlog.Record{
					Kind: eventlog.KindError, At: at, Host: s.Host,
					VAddr: dram.VirtAddr(addr), Actual: actual, Expected: expected,
					TempC: s.temp(at), PhysPage: dram.PhysPage(uint64(s.Host.Index()), addr),
				})
			}
			s.Device.Write(addr, write)
		}
		at += iterDur
	}
	s.Emit(eventlog.Record{Kind: eventlog.KindEnd, At: at, Host: s.Host, TempC: s.temp(at)})
	return errs
}

// TestRunBlockScanMatchesWordLoop runs the same seeded session through the
// block-compare Run and the word-at-a-time reference: the emitted record
// streams must be identical, byte for byte — same mismatches, same order,
// same per-error temperature draws.
func TestRunBlockScanMatchesWordLoop(t *testing.T) {
	for _, mode := range []Mode{FlipMode, CounterMode} {
		host := cluster.NodeID{Blade: 3, SoC: 7}
		perturb := func(iter int64, at timebase.T, d *dram.Device) {
			// Deterministic corruption: a burst whose position and width
			// depend only on the iteration, plus back-to-back mismatches to
			// exercise consecutive drill-downs.
			if iter%3 == 2 {
				return // clean iterations exercise the all-match fast path
			}
			base := int(iter*37) % d.Len()
			for k := 0; k < 1+int(iter%4); k++ {
				a := dram.Addr((base + k) % d.Len())
				d.Write(a, d.Read(a)^(1<<uint(iter%32)))
			}
		}
		run := func(useReference bool) ([]eventlog.Record, int) {
			dev := dram.NewDevice(uint64(host.Index()), 100, nil)
			var recs []eventlog.Record
			s := New(host, dev, mode, func(r eventlog.Record) { recs = append(recs, r) }, rng.New(99))
			s.Perturb = perturb
			dev.AddWeakCell(&dram.WeakCell{Addr: 41, Bit: 3, LeakProb: 0.5, Active: true})
			start := timebase.FromTime(timebase.Epoch.AddDate(0, 4, 0))
			var errs int
			if useReference {
				errs = referenceRun(s, start, 25)
			} else {
				errs = s.Run(start, 25, nil)
			}
			return recs, errs
		}
		gotRecs, gotErrs := run(false)
		wantRecs, wantErrs := run(true)
		if gotErrs != wantErrs {
			t.Fatalf("mode %v: errs %d, reference %d", mode, gotErrs, wantErrs)
		}
		if len(gotRecs) != len(wantRecs) {
			t.Fatalf("mode %v: %d records, reference %d", mode, len(gotRecs), len(wantRecs))
		}
		for i := range gotRecs {
			if gotRecs[i] != wantRecs[i] {
				t.Fatalf("mode %v: record %d differs:\nblock: %s\n ref:  %s",
					mode, i, gotRecs[i], wantRecs[i])
			}
		}
		if gotErrs == 0 {
			t.Fatalf("mode %v: differential test found no errors to compare", mode)
		}
	}
}
