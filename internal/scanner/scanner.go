// Package scanner implements the memory error scanning tool of §II-B.
//
// The tool allocates as much memory as it can (3 GB target, backing off in
// 10 MB steps when a leaky previous job left less), then loops forever:
// every word is written with a pattern, and on the next pass each word is
// checked against the expected value and rewritten with the next pattern.
// Mismatches produce ERROR records carrying timestamp, host, virtual
// address, actual and expected values, temperature and physical page.
//
// Two write-pattern strategies from the paper are implemented:
//
//   - FlipMode: 0x00000000 and 0xFFFFFFFF alternate each iteration,
//     stressing every bit position equally (used for most of the study);
//   - CounterMode: the value starts at 0x00000001 and increments by one
//     each iteration, which concentrates 1-bits in the least significant
//     bits (visible in Table I's small expected values).
//
// Scan runs against a real dram.Device: faults mutate real storage and the
// scanner finds them by reading it back — the same code path as hardware.
package scanner

import (
	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/rng"
	"unprotected/internal/thermal"
	"unprotected/internal/timebase"
)

// Mode selects the write-pattern strategy.
type Mode uint8

const (
	// FlipMode alternates 0x00000000 / 0xFFFFFFFF.
	FlipMode Mode = iota
	// CounterMode starts at 0x00000001 and increments every iteration.
	CounterMode
)

func (m Mode) String() string {
	if m == CounterMode {
		return "counter"
	}
	return "flip"
}

// Expected returns the pattern value checked at iteration i (0-based): the
// value written during iteration i-1 and verified at the start of i.
func (m Mode) Expected(i int64) uint32 {
	if m == CounterMode {
		return uint32(i) // iteration 0 wrote 0x00000001 at i=1... see Write
	}
	if i%2 == 0 {
		return 0x00000000
	}
	return 0xFFFFFFFF
}

// Write returns the pattern value written during iteration i.
func (m Mode) Write(i int64) uint32 {
	if m == CounterMode {
		return uint32(i + 1)
	}
	return m.Expected(i + 1)
}

// AllocTarget is the scanner's first allocation attempt (3 GB), the largest
// amount applications can allocate on a node.
const AllocTarget = cluster.ScanTargetBytes

// AllocStep is the backoff decrement (10 MB).
const AllocStep = 10 << 20

// Allocate models the backoff loop: the scanner asks for AllocTarget bytes
// and retries 10 MB lower until it fits within available. Returns 0 when
// even the smallest request fails (ALLOCFAIL). The retry loop is closed
// form — the number of 10 MB decrements is a ceiling division, so the
// result is O(1) instead of up to 308 iterations per session start.
func Allocate(available int64) int64 {
	if available <= 0 {
		return 0
	}
	if available >= AllocTarget {
		return AllocTarget
	}
	steps := (int64(AllocTarget) - available + AllocStep - 1) / AllocStep
	alloc := int64(AllocTarget) - steps*AllocStep
	if alloc < 0 {
		return 0
	}
	return alloc
}

// LeakModel samples how much memory a departing job leaked, shrinking what
// the scanner can allocate. Calibrated so the mean allocation is ≈2.9 GB,
// which together with ~4.2M node-hours yields the paper's ≈12,000 TBh.
type LeakModel struct {
	// LeakProb is the chance the previous job leaked at all.
	LeakProb float64
	// MeanSteps is the mean leak size in 10 MB steps when leaking.
	MeanSteps float64
	// AllocFailProb is the chance leakage consumed everything.
	AllocFailProb float64
}

// DefaultLeakModel returns the calibrated model.
func DefaultLeakModel() LeakModel {
	return LeakModel{LeakProb: 0.30, MeanSteps: 28, AllocFailProb: 0.002}
}

// Available samples the allocatable bytes at session start.
func (l LeakModel) Available(r *rng.Stream) int64 {
	if r.Bernoulli(l.AllocFailProb) {
		return 0
	}
	if !r.Bernoulli(l.LeakProb) {
		return AllocTarget
	}
	steps := r.Geometric(1 / l.MeanSteps)
	avail := int64(AllocTarget) - int64(steps)*AllocStep
	if avail < 0 {
		avail = 0
	}
	return avail
}

// ScanBandwidth is the sustained write+verify bandwidth of one SoC
// (bytes/second). One full pass over 3 GB takes ≈11 s.
const ScanBandwidth = 280 << 20

// IterDuration returns the wall time of one scan iteration over alloc bytes.
func IterDuration(alloc int64) timebase.T {
	d := alloc / ScanBandwidth
	if d < 1 {
		d = 1
	}
	return timebase.T(d)
}

// Scanner runs the scan loop against a real device. It is the verbatim
// tool: cmd/memscan wires it to a fault injector, tests assert on its logs.
type Scanner struct {
	Host    cluster.NodeID
	Device  *dram.Device
	Mode    Mode
	Thermal *thermal.Model
	// Soc12Powered reports the SoC-12 heating state for temperature logs.
	Soc12Powered bool
	// Emit receives every log record; must be non-nil.
	Emit func(eventlog.Record)
	// Perturb, if set, is called between iterations to inject faults
	// (particle strikes etc.) into the device.
	Perturb func(iter int64, at timebase.T, dev *dram.Device)

	rng *rng.Stream
}

// New builds a scanner for a device.
func New(host cluster.NodeID, dev *dram.Device, mode Mode, emit func(eventlog.Record), r *rng.Stream) *Scanner {
	return &Scanner{
		Host:    host,
		Device:  dev,
		Mode:    mode,
		Thermal: thermal.New(),
		Emit:    emit,
		rng:     r,
	}
}

func (s *Scanner) temp(at timebase.T) float64 {
	return s.Thermal.NodeTemp(s.Host, at, s.Soc12Powered, s.rng)
}

// Run executes a session: START, then iterations of verify+rewrite until
// stop is closed or maxIters is reached, then END. Simulated time advances
// by IterDuration per pass starting from the session's start time. The
// returned count is the number of ERROR records produced.
func (s *Scanner) Run(start timebase.T, maxIters int64, stop <-chan struct{}) int {
	alloc := int64(s.Device.Len()) * 4
	s.Emit(eventlog.Record{
		Kind: eventlog.KindStart, At: start, Host: s.Host,
		AllocBytes: alloc, TempC: s.temp(start),
	})
	// Iteration 0's "previous write": initialize the device.
	s.Device.Fill(s.Mode.Expected(0))
	iterDur := IterDuration(alloc)
	errs := 0
	at := start
	for iter := int64(0); maxIters <= 0 || iter < maxIters; iter++ {
		select {
		case <-stop:
			s.Emit(eventlog.Record{Kind: eventlog.KindEnd, At: at, Host: s.Host, TempC: s.temp(at)})
			return errs
		default:
		}
		if s.Perturb != nil {
			s.Perturb(iter, at, s.Device)
		}
		s.Device.Tick(s.rng)
		expected := s.Mode.Expected(iter)
		write := s.Mode.Write(iter)
		// Verify + rewrite in blocks: FindMismatch compares contiguous
		// words in a tight index loop and the matched prefix is rewritten
		// with a bulk FillRange, so the per-word path below runs only for
		// the words that actually mismatch. Emission order, error counts
		// and the per-error temperature draws are identical to the old
		// word-at-a-time loop — every mismatch is still visited in address
		// order, and matching words never consumed randomness.
		dev := s.Device
		n := dev.Len()
		for a := 0; a < n; {
			m := dev.FindMismatch(a, expected)
			if m < 0 {
				dev.FillRange(a, n, write)
				break
			}
			dev.FillRange(a, m, write)
			addr := dram.Addr(m)
			actual := dev.Read(addr)
			errs++
			s.Emit(eventlog.Record{
				Kind: eventlog.KindError, At: at, Host: s.Host,
				VAddr: dram.VirtAddr(addr), Actual: actual, Expected: expected,
				TempC: s.temp(at), PhysPage: dram.PhysPage(uint64(s.Host.Index()), addr),
			})
			dev.Write(addr, write)
			a = m + 1
		}
		at += iterDur
	}
	s.Emit(eventlog.Record{Kind: eventlog.KindEnd, At: at, Host: s.Host, TempC: s.temp(at)})
	return errs
}
