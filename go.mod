module unprotected

go 1.23
