module unprotected

go 1.22
