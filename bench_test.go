// Benchmarks regenerating every table and figure of the paper. One bench
// per artifact (BenchmarkFig01..Fig13, BenchmarkTab1/Tab2) measures the
// analysis that produces it over a shared full-scale campaign; the
// Benchmark*Substrate group measures the hot building blocks (scanner
// pass, extraction, ECC decode, strike sampling, campaign itself).
//
// Run: go test -bench=. -benchmem
package unprotected_test

import (
	"context"
	"io"
	"sync"
	"testing"

	"unprotected"
	"unprotected/internal/analysis"
	"unprotected/internal/checkpoint"
	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/ecc"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/pageretire"
	"unprotected/internal/quarantine"
	"unprotected/internal/radiation"
	"unprotected/internal/rng"
	"unprotected/internal/scanner"
	"unprotected/internal/solar"
	"unprotected/internal/stats"
	"unprotected/internal/timebase"
)

var (
	benchOnce  sync.Once
	benchStudy *unprotected.Study
)

// study runs the calibrated 13-month campaign once per bench binary.
func study(b *testing.B) *unprotected.Study {
	b.Helper()
	benchOnce.Do(func() { benchStudy = unprotected.RunPaperStudy(42) })
	return benchStudy
}

func BenchmarkHeadline(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := analysis.ComputeHeadline(s.Dataset)
		if h.IndependentFaults == 0 {
			b.Fatal("empty headline")
		}
	}
}

func BenchmarkFig01Hours(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.GridStats(analysis.HoursHeatmap(s.Dataset)).NonZero == 0 {
			b.Fatal("empty grid")
		}
	}
}

func BenchmarkFig02TBh(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.GridStats(analysis.TBhHeatmap(s.Dataset)).NonZero == 0 {
			b.Fatal("empty grid")
		}
	}
}

func BenchmarkFig03Errors(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.GridStats(analysis.ErrorsHeatmap(s.Dataset)).NonZero == 0 {
			b.Fatal("empty grid")
		}
	}
}

func BenchmarkTab1MultiBit(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.MultiBitTable(s.Dataset)
		if len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig04Simultaneity(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := analysis.ComputeSimultaneityFigure(s.Dataset.Faults)
		if fig.PerWord[1] == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkSimultaneity(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := extract.Simultaneity(extract.Groups(s.Dataset.Faults))
		if st.FaultsInGroups == 0 {
			b.Fatal("no simultaneity")
		}
	}
}

func BenchmarkFig05HourAll(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hod := analysis.ComputeHourOfDay(s.Dataset.Faults)
		if analysis.DayNightRatio(hod.Total()) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

func BenchmarkFig06HourMulti(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hod := analysis.ComputeHourOfDay(s.Dataset.Faults)
		if analysis.DayNightRatio(hod.MultiBit()) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

func BenchmarkFig07TempAll(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		temp := analysis.ComputeTemperature(s.Dataset.Faults)
		if temp.Hists[1].Total() == 0 {
			b.Fatal("empty temperature histogram")
		}
	}
}

func BenchmarkFig08TempMulti(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		temp := analysis.ComputeTemperature(s.Dataset.Faults)
		if temp.CountAbove(60, 2, 6) != 0 {
			b.Fatal("multi-bit errors above 60C")
		}
	}
}

func BenchmarkFig09ScannedDaily(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.DailyScanned(s.Dataset)) != timebase.StudyDays {
			b.Fatal("wrong length")
		}
	}
}

func BenchmarkFig10ErrorsDaily(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		daily := analysis.DailyErrors(s.Dataset.Faults)
		if stats.Sum(daily[0]) == 0 {
			b.Fatal("no errors")
		}
	}
}

func BenchmarkFig11MultiDaily(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		daily := analysis.DailyErrors(s.Dataset.Faults)
		var multi float64
		for c := 2; c <= 6; c++ {
			multi += stats.Sum(daily[c])
		}
		if multi == 0 {
			b.Fatal("no multi-bit errors")
		}
	}
}

func BenchmarkPearsonDaily(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, err := analysis.ScanErrorCorrelation(s.Dataset)
		if err != nil || pr.N == 0 {
			b.Fatal("correlation failed")
		}
	}
}

func BenchmarkFig12TopNodes(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, _ := analysis.TopNodes(s.Dataset, 3)
		if len(top) != 3 {
			b.Fatal("top nodes")
		}
	}
}

func BenchmarkFig13Regimes(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := analysis.ComputeRegimes(s.Dataset)
		if reg.DegradedDays == 0 {
			b.Fatal("no degraded days")
		}
	}
}

func BenchmarkTab2Quarantine(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := quarantine.Sweep(s.Dataset.Faults, quarantine.PaperPeriods, s.ExcludedNodes()...)
		if len(res) != len(quarantine.PaperPeriods) {
			b.Fatal("sweep")
		}
	}
}

func BenchmarkIsolatedSDC(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sdc := analysis.ComputeIsolatedSDC(s.Dataset)
		if len(sdc.Events) != 7 {
			b.Fatalf("isolated events %d", len(sdc.Events))
		}
	}
}

func BenchmarkEccAudit(b *testing.B) {
	s := study(b)
	pairs := make([][2]uint32, 0, len(s.Dataset.Faults))
	for _, f := range s.Dataset.Faults {
		pairs = append(pairs, [2]uint32{f.Expected, f.Expected ^ f.Actual})
	}
	sec := ecc.SECDED32{C: ecc.NewSECDED3932()}
	ck := ecc.NewChipkill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ecc.RunAudit(sec, pairs).Total == 0 || ecc.RunAudit(ck, pairs).Total == 0 {
			b.Fatal("audit")
		}
	}
}

func BenchmarkPageRetire(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := pageretire.Simulate(s.Dataset.Faults, pageretire.Policy{Threshold: 3})
		if res.Errors == 0 {
			b.Fatal("retire")
		}
	}
}

func BenchmarkCheckpointAdapt(b *testing.B) {
	s := study(b)
	reg := analysis.ComputeRegimes(s.Dataset)
	var failureHours []float64
	for _, f := range s.Dataset.FaultsExcluding(s.ExcludedNodes()...) {
		failureHours = append(failureHours, float64(f.FirstAt)/3600)
	}
	const cost = 0.1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := checkpoint.AdaptivePlan(reg.Degraded, cost, reg.MTBFNormalHours, reg.MTBFDegradedHours)
		out := checkpoint.Replay(plan, failureHours, cost)
		if out.Failures == 0 {
			b.Fatal("no failures replayed")
		}
	}
}

func BenchmarkBurnInEscapes(b *testing.B) {
	pop := dram.DefaultWeakPopulation()
	screen := dram.DefaultBurnIn()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dram.SimulateEscapes(pop, screen, 1000, r)
	}
}

func BenchmarkFullReport(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FullReport(io.Discard, unprotected.ReportOptions{Charts: true, Heatmaps: true})
	}
}

// --- Substrate benchmarks ---

func BenchmarkSubstrateCampaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := unprotected.RunStudy(unprotected.DefaultConfig(uint64(i + 1)))
		if len(st.Dataset.Faults) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignStream runs the same full-scale campaign as
// BenchmarkSubstrateCampaign but consumes it through the streaming API
// with a constant-memory consumer: the dataset is never materialized, so
// the allocs/op delta against the collect-all benchmark is the cost of
// buffering the merged slices. The delivered stream is byte-identical to
// the collect-all dataset (TestStreamMatchesCollectAllAcrossWorkers).
func BenchmarkCampaignStream(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var faults, sessions int
		st := unprotected.StreamCampaign(unprotected.DefaultConfig(uint64(i+1)), unprotected.StreamHandler{
			Fault:   func(unprotected.Fault) { faults++ },
			Session: func(eventlog.Session) { sessions++ },
		})
		if faults == 0 || faults != st.Faults || sessions != st.Sessions {
			b.Fatal("stream delivery disagrees with stats")
		}
	}
}

// BenchmarkAnalyzeIterator runs the same full-scale campaign as
// BenchmarkCampaignStream but consumes it through the iterator Source —
// the path Analyze drains — with the same constant-memory counting
// consumer. ~56k faults plus ~1M sessions flow per op, so allocs/op
// parity with the callback baseline above proves the iterator layer adds
// no per-event allocations (kway.MergeSeq's zero-alloc gate covers the
// merge itself; this covers the whole delivery stack).
func BenchmarkAnalyzeIterator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var faults, sessions int
		var stats unprotected.SourceStats
		for ev, err := range unprotected.Simulate(unprotected.DefaultConfig(uint64(i + 1))).Events(context.Background()) {
			if err != nil {
				b.Fatal(err)
			}
			switch ev.Kind {
			case unprotected.EventStats:
				stats = *ev.Stats
			case unprotected.EventFault:
				faults++
			case unprotected.EventSession:
				sessions++
			}
		}
		if faults == 0 || faults != stats.Faults || sessions != stats.Sessions {
			b.Fatal("iterator delivery disagrees with stats")
		}
	}
}

// BenchmarkSubstrateScannerPass measures one verify+rewrite pass over a
// clean 4 MiB device. Pre-PR (word-at-a-time Read/compare/Write loop):
// ~1.56 ms/op ≈ 2.7 GB/s on the reference container; the block-compare
// FindMismatch/FillRange path must stay ≥2× that.
func BenchmarkSubstrateScannerPass(b *testing.B) {
	host := cluster.NodeID{Blade: 1, SoC: 2}
	dev := dram.NewDevice(uint64(host.Index()), 1<<20, nil) // 4 MiB
	sink := func(eventlog.Record) {}
	s := scanner.New(host, dev, scanner.FlipMode, sink, rng.New(1))
	b.SetBytes(int64(dev.Len()) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(0, 1, nil)
	}
}

// BenchmarkSubstrateParse measures the log-ingest fast path on a fully
// loaded pre-collapsed ERROR line — the record shape that dominates
// exported campaign logs. Pre-PR Parse (strings.Fields + time.Parse):
// ~1600 ns/op, 248 B/op, 7 allocs/op on the reference container; ParseBytes
// must run ≥3× faster with zero steady-state allocations
// (TestParseBytesZeroAlloc is the hard gate).
func BenchmarkSubstrateParse(b *testing.B) {
	line := []byte("ERROR ts=2015-06-14T03:12:45Z host=02-04 vaddr=0x7f2a00001234 actual=0xfffffffe expected=0xffffffff temp=33.517383129784076 ppage=0x1a2b3c last=2015-06-14T03:14:45Z logs=12")
	b.ReportAllocs()
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		rec, err := eventlog.ParseBytes(line)
		if err != nil || rec.Kind != eventlog.KindError {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrateRecordAppend is the exporter's mirror image: rendering
// the same record shape into a reused buffer (the Writer's steady state)
// must not allocate.
func BenchmarkSubstrateRecordAppend(b *testing.B) {
	rec := eventlog.Record{
		Kind: eventlog.KindError, At: 11480000, Host: cluster.NodeID{Blade: 2, SoC: 4},
		VAddr: 0x7f2a00001234, Actual: 0xfffffffe, Expected: 0xffffffff,
		TempC: 33.517383129784076, PhysPage: 0x1a2b3c, LastAt: 11480120, Logs: 12,
	}
	buf := rec.AppendText(make([]byte, 0, 256))
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = rec.AppendText(buf[:0])
	}
}

func BenchmarkSubstrateExtraction(b *testing.B) {
	// One million ERROR records through the streaming collapser.
	recs := make([]eventlog.Record, 0, 1<<20)
	host := cluster.NodeID{Blade: 2, SoC: 4}
	r := rng.New(7)
	at := timebase.T(0)
	for len(recs) < cap(recs) {
		at += timebase.T(r.IntN(20))
		recs = append(recs, eventlog.Record{
			Kind: eventlog.KindError, At: at, Host: host,
			VAddr: dram.VirtAddr(dram.Addr(r.IntN(4096))), Expected: 0xFFFFFFFF,
			Actual: 0xFFFFFFFE,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := extract.NewCollapser()
		for _, rec := range recs {
			c.Observe(rec)
		}
		runs, raw := c.Close()
		if raw != int64(len(recs)) || len(runs) == 0 {
			b.Fatal("extraction")
		}
	}
}

func BenchmarkSubstrateSECDEDDecode(b *testing.B) {
	c := ecc.NewSECDED3932()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Classify(uint64(i)&0xFFFFFFFF, uint64(i%37)) == ecc.OK && i%37 != 0 {
			b.Fatal("impossible outcome")
		}
	}
}

func BenchmarkSubstrateChipkillDecode(b *testing.B) {
	c := ecc.NewChipkill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify32(uint32(i), uint32(i%4096))
	}
}

func BenchmarkSubstrateStrikeSampling(b *testing.B) {
	flux := radiation.NewFlux(solar.Barcelona)
	gen := radiation.NewGenerator(flux, 0.001)
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Window(0, timebase.T(30*86400), r)
	}
}

func BenchmarkSubstrateSolarPosition(b *testing.B) {
	at := timebase.Epoch
	for i := 0; i < b.N; i++ {
		solar.PositionAt(solar.Barcelona, at)
	}
}
