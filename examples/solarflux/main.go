// Solarflux reproduces the paper's most striking environmental finding
// (§III-E, Fig 6): multi-bit DRAM errors track the position of the sun in
// the sky. It prints the modeled neutron-flux modulation for solstice
// days, then runs the study and shows the measured hour-of-day histogram
// of multi-bit errors with its day/night ratio.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"unprotected"
	"unprotected/internal/analysis"
	"unprotected/internal/radiation"
	"unprotected/internal/solar"
	"unprotected/internal/timebase"
)

func main() {
	flux := radiation.NewFlux(solar.Barcelona)

	fmt.Println("Relative neutron-flux multiplier in Barcelona (1.0 = night):")
	for _, day := range []time.Time{
		time.Date(2015, time.June, 21, 0, 0, 0, 0, time.UTC),
		time.Date(2015, time.December, 21, 0, 0, 0, 0, time.UTC),
	} {
		fmt.Printf("  %s:", day.Format("Jan 02"))
		for h := 0; h < 24; h += 3 {
			at := timebase.FromTime(day.Add(time.Duration(h) * time.Hour))
			fmt.Printf("  %02dh=%.2f", h, flux.Multiplier(at))
		}
		fmt.Println()
	}
	fmt.Printf("integrated day(7-18h)/night flux ratio: %.2f (paper: ~2x for multi-bit errors)\n\n",
		flux.DayNightRatio())

	// The hour-of-day histogram is online-computable, so the study can run
	// as a pure stream: WithoutDataset materializes nothing, and the stock
	// figure accumulators carry the answer.
	fmt.Println("Running the 13-month study...")
	study, err := unprotected.Analyze(context.Background(),
		unprotected.Simulate(unprotected.DefaultConfig(7)),
		unprotected.WithoutDataset())
	if err != nil {
		fmt.Fprintln(os.Stderr, "solarflux:", err)
		os.Exit(1)
	}
	hod := study.Figures.HourOfDay

	multi := hod.MultiBit()
	all := hod.Total()
	fmt.Printf("measured all-errors day/night ratio:   %.2f (flat distribution = 0.85)\n", analysis.DayNightRatio(all))
	fmt.Printf("measured multi-bit day/night ratio:    %.2f\n", analysis.DayNightRatio(multi))
	fmt.Printf("multi-bit peak hour:                   %02d:00 local\n\n", analysis.PeakHour(multi))

	hod.Chart("Fig 6: multi-bit errors per hour of day", true).Render(os.Stdout)
}
