// Checkpointing evaluates §IV's proposal to adapt the checkpoint interval
// to the detected failure regime: under normal operation the system's
// MTBF supports relaxed checkpointing, but during degraded periods (MTBF
// ~0.39h) a long-running job must checkpoint far more often. The example
// compares a static Young/Daly plan against a regime-adaptive plan over
// the study's actual error timeline.
//
// Everything it needs is online-computable, so the study runs as a pure
// stream: the regime split comes from the stock figure accumulators and
// the failure timeline from a custom Observer riding the same single
// pass — no dataset is ever materialized.
package main

import (
	"context"
	"fmt"
	"os"

	"unprotected"
	"unprotected/internal/checkpoint"
)

func main() {
	fmt.Println("Running the 13-month study...")
	cfg := unprotected.DefaultConfig(42)
	controller := cfg.Profile.ControllerNode

	// A system-wide job sees every fault (excluding the retired node).
	var failureHours []float64
	timeline := unprotected.FuncObserver{Fault: func(f unprotected.Fault) {
		if f.Node != controller {
			failureHours = append(failureHours, float64(f.FirstAt)/3600)
		}
	}}
	study, err := unprotected.Analyze(context.Background(), unprotected.Simulate(cfg),
		unprotected.WithObservers(timeline), unprotected.WithoutDataset())
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkpointing:", err)
		os.Exit(1)
	}

	reg := study.Figures.Regimes.Finish()
	fmt.Printf("regimes: %d normal days (MTBF %.0f h), %d degraded days (MTBF %.2f h)\n\n",
		reg.NormalDays, reg.MTBFNormalHours, reg.DegradedDays, reg.MTBFDegradedHours)

	const cost = 0.1 // checkpoint cost in hours
	staticIv := checkpoint.YoungDaly(cost, reg.MTBFNormalHours)
	degIv := checkpoint.YoungDaly(cost, reg.MTBFDegradedHours)
	fmt.Printf("Young/Daly intervals: normal %.2f h, degraded %.2f h (checkpoint cost %.1f h)\n\n",
		staticIv, degIv, cost)

	static := checkpoint.Replay(checkpoint.StaticPlan(staticIv), failureHours, cost)
	adaptive := checkpoint.Replay(
		checkpoint.AdaptivePlan(reg.Degraded, cost, reg.MTBFNormalHours, reg.MTBFDegradedHours),
		failureHours, cost)

	report := func(name string, o checkpoint.Outcome) {
		fmt.Printf("%-9s checkpoints=%5d (%.0f h)  rework=%.0f h  total waste=%.0f h\n",
			name, o.CheckpointsTaken, o.CheckpointHours, o.ReworkHours, o.WasteHours)
	}
	report("static:", static)
	report("adaptive:", adaptive)
	if adaptive.WasteHours < static.WasteHours {
		fmt.Printf("\nadaptive checkpointing saves %.0f hours of wasted work (%.0f%%)\n",
			static.WasteHours-adaptive.WasteHours,
			100*(static.WasteHours-adaptive.WasteHours)/static.WasteHours)
	} else {
		fmt.Println("\nadaptive plan did not improve on static for this timeline")
	}
}
