// Eccaudit answers the paper's central "what if" (§III-C, §III-D): had
// the prototype carried ECC, which of the observed corruptions would have
// been corrected, which would have crashed the node, and which would have
// slipped through as silent data corruption? Real Hsiao SECDED (39,32)
// and GF(16) chipkill codecs decode every observed corruption pattern.
package main

import (
	"context"
	"fmt"
	"os"

	"unprotected"
	"unprotected/internal/ecc"
)

func main() {
	// The audit only needs (data, syndrome) pairs, so it rides the event
	// stream with a custom Observer instead of materializing the dataset:
	// the pairs are collected during the campaign's single pass.
	fmt.Println("Running the 13-month study...")
	var pairs [][2]uint32
	collect := unprotected.FuncObserver{Fault: func(f unprotected.Fault) {
		pairs = append(pairs, [2]uint32{f.Expected, f.Expected ^ f.Actual})
	}}
	_, err := unprotected.Analyze(context.Background(),
		unprotected.Simulate(unprotected.DefaultConfig(42)),
		unprotected.WithObservers(collect), unprotected.WithoutDataset())
	if err != nil {
		fmt.Fprintln(os.Stderr, "eccaudit:", err)
		os.Exit(1)
	}

	sec := ecc.RunAudit(ecc.SECDED32{C: ecc.NewSECDED3932()}, pairs)
	ck := ecc.RunAudit(ecc.NewChipkill(), pairs)

	fmt.Printf("\n%d observed corruptions decoded under both codes:\n\n", len(pairs))
	fmt.Printf("%-22s %12s %12s\n", "", "SECDED(39,32)", "chipkill")
	row := func(label string, s, c int) { fmt.Printf("%-22s %12d %12d\n", label, s, c) }
	row("corrected", sec.ByOutcome[ecc.Corrected], ck.ByOutcome[ecc.Corrected])
	row("detected (crash)", sec.ByOutcome[ecc.Detected], ck.ByOutcome[ecc.Detected])
	row("miscorrected (SDC)", sec.ByOutcome[ecc.Miscorrected], ck.ByOutcome[ecc.Miscorrected])
	row("undetected (SDC)", sec.ByOutcome[ecc.Undetected], ck.ByOutcome[ecc.Undetected])
	row("total silent", sec.Silent(), ck.Silent())
	row("total uncorrected", sec.Uncorrected(), ck.Uncorrected())

	if cu := ck.Uncorrected(); cu > 0 {
		fmt.Printf("\nuncorrected-error ratio SECDED/chipkill: %.1fx (related work [31] measured 42x in the field)\n",
			float64(sec.Uncorrected())/float64(cu))
	} else {
		fmt.Println("\nchipkill left no uncorrected errors in this population")
	}

	fmt.Println("\nSilent corruptions by per-word bit count (SECDED):")
	for bits := 3; bits <= 9; bits++ {
		if n := sec.SilentByBits[bits]; n > 0 {
			fmt.Printf("  %d-bit corruptions slipping through: %d\n", bits, n)
		}
	}
	fmt.Println("\nThe >3-bit isolated events of §III-D are exactly the population that")
	fmt.Println("SECDED miscorrects or passes — on nodes with no other errors at all,")
	fmt.Println("so no counter-based health monitoring would have flagged them.")

	deviceFailureComparison()
}

// deviceFailureComparison shows where chipkill's 42x field advantage comes
// from: whole-device (x4 chip) failures corrupt 1-4 bits of one symbol,
// which chipkill corrects by construction and SECDED mostly cannot.
func deviceFailureComparison() {
	var pairs [][2]uint32
	for sym := 0; sym < 8; sym++ {
		for pat := uint32(1); pat < 16; pat++ {
			pairs = append(pairs, [2]uint32{0xFFFFFFFF, pat << (4 * sym)})
			pairs = append(pairs, [2]uint32{0x00000000, pat << (4 * sym)})
		}
	}
	sec := ecc.RunAudit(ecc.SECDED32{C: ecc.NewSECDED3932()}, pairs)
	ck := ecc.RunAudit(ecc.NewChipkill(), pairs)
	fmt.Printf("\nSynthetic x4 device-failure population (%d patterns):\n", len(pairs))
	fmt.Printf("  SECDED corrected %d/%d, chipkill corrected %d/%d\n",
		sec.ByOutcome[ecc.Corrected], sec.Total, ck.ByOutcome[ecc.Corrected], ck.Total)
	fmt.Printf("  uncorrected: SECDED %d vs chipkill %d — the regime behind the 42x field gap\n",
		sec.Uncorrected(), ck.Uncorrected())
}
