// Quickstart: run the full calibrated study and print the paper's headline
// findings. This is the three-line entry point to the whole reproduction.
package main

import (
	"os"

	"unprotected"
)

func main() {
	study := unprotected.RunPaperStudy(42)
	study.FullReport(os.Stdout, unprotected.ReportOptions{})
}
