// Quickstart: run the full calibrated study through the one public entry
// point — Analyze over a simulation Source — and print the paper's
// headline findings. This is the four-line entry point to the whole
// reproduction.
package main

import (
	"context"
	"fmt"
	"os"

	"unprotected"
)

func main() {
	study, err := unprotected.Analyze(context.Background(),
		unprotected.Simulate(unprotected.DefaultConfig(42)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	study.FullReport(os.Stdout, unprotected.ReportOptions{})
}
