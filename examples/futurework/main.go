// Futurework runs the two experiments the paper proposes in §VI:
//
//  1. Stress test: keep the overheating SoC-12 positions powered all year
//     and monitor them and their neighbours — temperature-accelerated
//     retention failures emerge exactly where the heat is.
//  2. Component swap: move the degrading component of the worst node
//     (02-04) into a healthy node mid-study — the error stream follows
//     the component, nailing the root cause to hardware rather than the
//     chassis position.
//
// It also quantifies the §III-H burn-in story: how many weak cells escape
// a production screen and reach the field.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"unprotected"
	"unprotected/internal/campaign"
	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/rng"
	"unprotected/internal/timebase"
)

// run streams one §VI campaign variant through the given per-fault
// counter without materializing a dataset: the experiments only tally
// faults by position and time, which a custom Observer does during the
// engine's single pass.
func run(cfg *campaign.Config, count func(unprotected.Fault)) {
	_, err := unprotected.Analyze(context.Background(), unprotected.Simulate(cfg),
		unprotected.WithObservers(unprotected.FuncObserver{Fault: count}),
		unprotected.WithoutDataset())
	if err != nil {
		fmt.Fprintln(os.Stderr, "futurework:", err)
		os.Exit(1)
	}
}

func main() {
	stressTest()
	swapExperiment()
	burnInStory()
}

func stressTest() {
	fmt.Println("== §VI stress test: SoC-12 powered all year ==")
	hot, cold := 0, 0
	over55 := 0
	special := map[cluster.NodeID]bool{
		{Blade: 2, SoC: 4}: true, {Blade: 4, SoC: 5}: true, {Blade: 58, SoC: 2}: true,
	}
	run(campaign.StressConfig(11), func(f unprotected.Fault) {
		switch {
		case f.Node.SoC >= 11 && f.Node.SoC <= 13:
			hot++
			if f.HasTemp() && f.TempC > 55 {
				over55++
			}
		case special[f.Node]:
		default:
			cold++
		}
	})
	fmt.Printf("faults on hot positions (SoC 11-13): %d, of which %d logged above 55°C\n", hot, over55)
	fmt.Printf("ambient faults elsewhere:            %d\n", cold)
	fmt.Println("conclusion: with the heaters left on, §III-F's missing temperature")
	fmt.Println("correlation appears — the paper's scanner simply never stressed the silicon.")
	fmt.Println()
}

func swapExperiment() {
	fmt.Println("== §VI component swap: faulty DIMM moves to a healthy node ==")
	swapAt := timebase.FromTime(time.Date(2015, time.October, 15, 0, 0, 0, 0, time.UTC))
	healthy := cluster.NodeID{Blade: 40, SoC: 6}
	controller := cluster.NodeID{Blade: 2, SoC: 4}
	var a0, a1, b0, b1 int
	run(campaign.SwapConfig(13, swapAt, healthy), func(f unprotected.Fault) {
		switch f.Node {
		case controller:
			if f.FirstAt < swapAt {
				a0++
			} else {
				a1++
			}
		case healthy:
			if f.FirstAt < swapAt {
				b0++
			} else {
				b1++
			}
		}
	})
	fmt.Printf("node %v (donor):     %6d faults before swap, %6d after\n", controller, a0, a1)
	fmt.Printf("node %v (recipient): %6d faults before swap, %6d after\n", healthy, b0, b1)
	fmt.Println("conclusion: the error stream follows the component — root cause is the")
	fmt.Println("hardware itself, not the rack position or its environment.")
	fmt.Println()
}

func burnInStory() {
	fmt.Println("== §III-H: why weak bits reach the field despite burn-in ==")
	r := rng.New(5)
	pop := dram.DefaultWeakPopulation()
	screen := dram.DefaultBurnIn()
	fmt.Printf("burn-in acceleration at %.0f°C vs %.0f°C field: %.0fx\n",
		screen.TempC, screen.FieldTempC, screen.Acceleration())
	rate := dram.EscapeRate(pop, screen, 20000, r)
	fmt.Printf("weak cells escaping a %.0fh screen: %.4f per device\n", screen.Hours, rate)
	fmt.Printf("expected weak-bit nodes in a 923-node system: %.1f (the study found 2)\n",
		rate*923)
	longer := screen
	longer.Hours = 168
	fmt.Printf("with a week-long screen instead: %.4f per device (%.1f nodes)\n",
		dram.EscapeRate(pop, longer, 20000, r),
		dram.EscapeRate(pop, longer, 20000, r)*923)
}
