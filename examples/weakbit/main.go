// Weakbit demonstrates the §III-H weak-bit phenomenon end to end on the
// *real* scanner path: a device with one intermittently leaking cell is
// genuinely scanned word by word; the raw ERROR records are collapsed by
// the §II-C extraction methodology into independent faults (all the
// identical bit flip, like nodes 04-05 and 58-02); and the §IV page
// retirement policy is evaluated against them.
package main

import (
	"fmt"

	"unprotected/internal/cluster"
	"unprotected/internal/dram"
	"unprotected/internal/eventlog"
	"unprotected/internal/extract"
	"unprotected/internal/pageretire"
	"unprotected/internal/rng"
	"unprotected/internal/scanner"
	"unprotected/internal/timebase"
)

func main() {
	host := cluster.NodeID{Blade: 4, SoC: 5}
	r := rng.New(2015)
	dev := dram.NewDevice(uint64(host.Index()), 1<<18, nil)

	// One weak cell, observably polarized, leaking on ~1.2% of passes so
	// leaks are spaced beyond the extraction gap and register as separate
	// independent faults (like the thousands on nodes 04-05 and 58-02).
	var weak *dram.WeakCell
	for addr := dram.Addr(0); weak == nil; addr++ {
		for bit := 0; bit < dram.WordBits; bit++ {
			if dev.Polarity.IsTrueCell(uint64(host.Index()), addr+1000, bit) {
				weak = &dram.WeakCell{Addr: addr + 1000, Bit: bit, LeakProb: 0.012, Active: true}
				break
			}
		}
	}
	dev.AddWeakCell(weak)
	fmt.Printf("injected weak cell: word %d, bit %d, 1.2%% leak probability per pass\n", weak.Addr, weak.Bit)

	// Scan 30k passes and stream every record through extraction.
	collapser := extract.NewCollapser()
	raw := 0
	s := scanner.New(host, dev, scanner.FlipMode, func(rec eventlog.Record) {
		if rec.Kind == eventlog.KindError {
			raw++
		}
		collapser.Observe(rec)
	}, r)
	s.Run(timebase.FromTime(timebase.Epoch.AddDate(0, 7, 0)), 30000, nil)

	runs, _ := collapser.Close()
	faults := extract.Faults(runs)
	fmt.Printf("raw ERROR records: %d  ->  independent faults after §II-C extraction: %d\n", raw, len(faults))

	// Every fault is the identical single-bit 1->0 flip (§III-H).
	identical := true
	for _, f := range faults {
		if f.Addr != weak.Addr || f.BitCount() != 1 || f.Ones2Zeros.Count() != 1 {
			identical = false
		}
	}
	fmt.Printf("all faults identical (same cell, 1->0): %v\n\n", identical)

	// Page retirement absorbs a weak bit almost entirely.
	res := pageretire.Simulate(faults, pageretire.Policy{Threshold: 2})
	fmt.Printf("page retirement (threshold 2): %d pages retired, %d faults prevented of %d (%.0f%%)\n",
		res.PagesRetired, res.Prevented, res.Prevented+res.Errors, 100*res.PreventionRate())
	fmt.Println("\nThe paper's caveat (§IV): retirement cannot address multi-region")
	fmt.Println("simultaneous corruptions — see the eccaudit example for those.")
}
