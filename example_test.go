package unprotected_test

import (
	"os"

	"unprotected"
)

// Example_quickstart runs the full calibrated 13-month study — 923 nodes,
// >25M raw error logs, ~56k independent faults — and prints every §III
// analysis with the paper's values alongside. It completes in about a
// second.
func Example_quickstart() {
	study := unprotected.RunPaperStudy(42)
	study.FullReport(os.Stdout, unprotected.ReportOptions{})
	// Output is the full report; see EXPERIMENTS.md for the measured
	// values at this seed.
}
