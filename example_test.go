package unprotected_test

import (
	"context"
	"fmt"
	"os"

	"unprotected"
)

// Example_quickstart runs the full calibrated 13-month study — 923 nodes,
// >25M raw error logs, ~56k independent faults — through the unified
// Analyze entry point and prints every §III analysis with the paper's
// values alongside. It completes in about a second.
func Example_quickstart() {
	study, err := unprotected.Analyze(context.Background(),
		unprotected.Simulate(unprotected.DefaultConfig(42)))
	if err != nil {
		panic(err)
	}
	study.FullReport(os.Stdout, unprotected.ReportOptions{})
	// Output is the full report; see EXPERIMENTS.md for the measured
	// values at this seed.
}

// Example_observer attaches a custom one-pass accumulator to the campaign
// stream — the extension point for downstream reliability workloads — and
// runs without materializing the dataset: constant memory, one pass.
func Example_observer() {
	var multiBit int
	counter := unprotected.FuncObserver{Fault: func(f unprotected.Fault) {
		if f.BitCount() > 1 {
			multiBit++
		}
	}}
	_, err := unprotected.Analyze(context.Background(),
		unprotected.Simulate(unprotected.DefaultConfig(42)),
		unprotected.WithObservers(counter), unprotected.WithoutDataset())
	if err != nil {
		panic(err)
	}
	fmt.Println("multi-bit faults:", multiBit)
}

// Example_events consumes the merged stream directly: the iterator yields
// a stats prologue, then every fault, then every session, in canonical
// order. Breaking out of the loop (or cancelling the context) stops the
// simulation engine leak-free.
func Example_events() {
	ctx := context.Background()
	for ev, err := range unprotected.Simulate(unprotected.DefaultConfig(42)).Events(ctx) {
		if err != nil {
			panic(err)
		}
		if ev.Kind == unprotected.EventFault {
			fmt.Printf("first fault: node %v addr %#x\n", ev.Fault.Node, ev.Fault.Addr)
			break // stops the engine; no goroutines are leaked
		}
	}
}
