// Package analysis is the invariant-suite's analyzer framework: the
// minimal, API-compatible subset of golang.org/x/tools/go/analysis that
// the unprotectedlint analyzers and drivers are written against.
//
// The real x/tools module is the intended dependency — the types here
// mirror its field names and semantics one-for-one so the analyzers can
// be ported by changing an import path — but this repo builds hermetically
// (no module proxy, no vendored third-party code), so the subset the suite
// actually needs is implemented on the standard library instead:
//
//   - Analyzer: a named check with a Run function.
//   - Pass: one analyzer applied to one type-checked package.
//   - Diagnostic: a positioned finding.
//
// Deliberately absent, because no analyzer in the suite needs them:
// Facts (no cross-package state), SSA (all checks are AST+types shaped),
// Requires/ResultOf (no analyzer composition), and per-analyzer flag
// sets. If a future analyzer needs facts, swap this package for the real
// golang.org/x/tools/go/analysis rather than growing this one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant check. The fields mirror
// x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name> <reason>" suppression comments. It must be a
	// valid Go identifier.
	Name string

	// Doc is the one-paragraph contract statement: the invariant enforced
	// and the bug class it fossilizes.
	Doc string

	// Run applies the analyzer to one package, reporting findings through
	// pass.Report. The returned error aborts the whole run (reserved for
	// internal analyzer failures, not findings).
	Run func(*Pass) error
}

// Pass connects one Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. Drivers install it; analyzers call it
	// (usually via Reportf).
	Report func(Diagnostic)
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // name of the analyzer that produced it
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file —
// the standard exemption for analyzers that police production code only.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// NewInfo returns a types.Info with every map the analyzers consume
// allocated: Types, Defs, Uses, Selections, Scopes and Implicits. Both
// drivers (the vet-tool and the analysistest harness) type-check with it
// so analyzers can rely on all six.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
