// Package suppress implements the suite-wide suppression contract:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line, or alone on the line directly above it,
// silences that analyzer's findings for that line. The reason is
// mandatory — an allow comment without one does not suppress anything
// and is itself reported, so every deliberate exception in the tree
// carries a written justification.
//
// Both drivers (the go vet tool and the analysistest harness) filter
// through this package, so tests exercise exactly the production
// semantics.
package suppress

import (
	"go/ast"
	"go/token"
	"strings"

	"unprotectedlint/analysis"
)

// Marker is the comment prefix that introduces a suppression.
const Marker = "//lint:allow"

// allow is one parsed suppression comment.
type allow struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int // line the comment appears on
	own      bool
}

// Set holds the suppressions of one package.
type Set struct {
	fset   *token.FileSet
	allows []*allow
}

// Collect parses every //lint:allow comment in files.
func Collect(fset *token.FileSet, files []*ast.File) *Set {
	s := &Set{fset: fset}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, Marker)
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				// The reason is prose, not code: a later "//" (e.g. an
				// analysistest "// want" expectation) is not part of it.
				if i := strings.Index(text, "//"); i >= 0 {
					text = text[:i]
				}
				name, reason := splitArg(text)
				s.allows = append(s.allows, &allow{
					analyzer: name,
					reason:   reason,
					pos:      c.Pos(),
					line:     fset.Position(c.Pos()).Line,
					own:      ownLine(fset, f, c),
				})
			}
		}
	}
	return s
}

// splitArg splits " name reason..." into its analyzer name and reason.
func splitArg(s string) (name, reason string) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return "", ""
	}
	return fields[0], strings.Join(fields[1:], " ")
}

// ownLine reports whether the comment is the only thing on its line — the
// form that suppresses the line below instead of its own. Enclosing
// nodes (a function body, say) span the comment's line without putting
// tokens on it, so the test is whether any non-comment node STARTS or
// ENDS there, not whether one spans it.
func ownLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cl := fset.Position(c.Pos()).Line
	own := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !own {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		if fset.Position(n.End()).Line < cl || fset.Position(n.Pos()).Line > cl {
			return false // entirely before or after the line; skip subtree
		}
		if fset.Position(n.Pos()).Line == cl || fset.Position(n.End()).Line == cl {
			own = false
			return false
		}
		return true
	})
	return own
}

// Filter removes suppressed diagnostics. A diagnostic of analyzer A on
// line L is suppressed by an allow for A on line L, or by an own-line
// allow for A on line L-1 — provided the allow carries a reason.
func (s *Set) Filter(diags []analysis.Diagnostic) []analysis.Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !s.suppresses(d) {
			kept = append(kept, d)
		}
	}
	return kept
}

func (s *Set) suppresses(d analysis.Diagnostic) bool {
	line := s.fset.Position(d.Pos).Line
	file := s.fset.Position(d.Pos).Filename
	for _, a := range s.allows {
		if a.analyzer != d.Analyzer || a.reason == "" {
			continue
		}
		if s.fset.Position(a.pos).Filename != file {
			continue
		}
		if a.line == line || (a.own && a.line == line-1) {
			return true
		}
	}
	return false
}

// Problems reports the suppressions that are themselves findings: every
// allow comment missing its mandatory reason. Returned as diagnostics of
// the pseudo-analyzer "lintallow" (not itself suppressible).
func (s *Set) Problems() []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range s.allows {
		if a.reason == "" {
			diags = append(diags, analysis.Diagnostic{
				Pos:      a.pos,
				Analyzer: "lintallow",
				Message:  "lint:allow " + a.analyzer + " requires a written reason: //lint:allow " + a.analyzer + " <why this exception is sound>",
			})
		}
	}
	return diags
}
