// Package astwalk holds the traversal and type-resolution helpers shared
// by the unprotectedlint analyzers: a WithStack walk (the ancestor stack
// every structural check needs), callee resolution through the type
// information, and a "does this type carry a Reset/Lock method" probe.
package astwalk

import (
	"go/ast"
	"go/types"
	"strings"
)

// WithStack walks every node of f depth-first, calling fn with the node
// and the stack of its ancestors (stack[0] is the *ast.File, the last
// element is the node itself). If fn returns false the node's children
// are skipped.
func WithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// Children are skipped; pop now because the nil callback for
			// this node will not arrive.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// Callee resolves the called function or method of a call expression, or
// nil if it cannot be determined (a call through a function value, a
// conversion, or a builtin).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function path.name
// (never a method).
func IsPkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// ReceiverNamed returns the named type of fn's receiver (unwrapping one
// pointer), or nil if fn is not a method.
func ReceiverNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// HasMethod reports whether t (or *t) has a method with the given name,
// in either the value or pointer method set.
func HasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

// EnclosingFunc returns the innermost function literal or declaration in
// stack (excluding the last element if it is itself the function), or nil
// if the node is at package level.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return stack[i]
		}
	}
	return nil
}

// FuncBody returns the body of a node returned by EnclosingFunc.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// PkgPathHasSuffix reports whether path ends with one of the given
// "internal/name" suffixes at a path-segment boundary. The test-variant
// import path decoration ("pkg [pkg.test]") is stripped first, so a
// package vetted together with its test files still matches.
func PkgPathHasSuffix(path string, suffixes []string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// IsSyncPoolExpr reports whether the expression denotes a value of type
// sync.Pool or *sync.Pool — the receiver test for Get/Put calls.
func IsSyncPoolExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// UsedObject resolves an identifier expression (possibly parenthesized)
// to the object it uses, or nil.
func UsedObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}
