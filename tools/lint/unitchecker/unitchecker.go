// Package unitchecker implements the driver side of the `go vet
// -vettool` protocol on the standard library, mirroring
// golang.org/x/tools/go/analysis/unitchecker: the go command invokes the
// tool once per package in the build graph, handing it a JSON config
// naming the package's files and the export data of its dependencies.
//
// The protocol, as spoken by cmd/go (verified empirically against the
// toolchain in this image):
//
//  1. `tool -flags` — print a JSON array describing the tool's flags
//     (empty for this suite) so vet can validate its command line.
//  2. `tool -V=full` — print "<path> version <...> buildID=<hex>"; the
//     go command folds the ID into its action cache key, so the hash
//     must change when the tool's binary changes.
//  3. `tool <dir>/vet.cfg` — analyze one package. Dependencies arrive
//     pre-compiled: cfg.PackageFile maps import paths to export data
//     files, which the stdlib gc importer reads via its lookup hook.
//     Packages with VetxOnly=true are dependencies being traversed for
//     facts only; this suite uses no facts, so they are acknowledged
//     (the .vetx output file must still be written) and skipped.
//
// Diagnostics go to stderr as "file:line:col: message [analyzer]" and
// the tool exits 2, which go vet renders exactly like its native checks.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"unprotectedlint/analysis"
	"unprotectedlint/suppress"
)

// Config is the JSON schema of the vet.cfg file cmd/go writes. Field
// names must match cmd/go/internal/work's vetConfig exactly.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the driver. It does not return.
func Main(analyzers ...*analysis.Analyzer) {
	if len(os.Args) == 2 {
		switch arg := os.Args[1]; {
		case arg == "-flags":
			// No tool-specific flags; vet only needs valid JSON.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasPrefix(arg, "-V"):
			printVersion()
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			os.Exit(run(arg, analyzers))
		}
	}
	fmt.Fprintf(os.Stderr, "usage: %s <vet.cfg>\n\n"+
		"unprotectedlint is a go vet tool; invoke it as\n"+
		"  go vet -vettool=$(command -v unprotectedlint) ./...\n", os.Args[0])
	os.Exit(1)
}

// printVersion emits the -V=full line. The go command parses the
// buildID= token and mixes it into the vet action cache key, so the hash
// is the tool binary's own content hash: rebuild the tool with different
// analyzers and every package re-vets.
func printVersion() {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		os.Args[0], string(h.Sum(nil)[:12]))
}

func run(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unprotectedlint: %v\n", err)
		return 1
	}
	// The vetx file is this package's entry in vet's fact-output
	// protocol. The suite computes no facts, but the go command requires
	// the file to exist to cache the action, for dependencies and
	// targets alike.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "unprotectedlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "unprotectedlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "unprotectedlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := runAnalyzers(analyzers, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unprotectedlint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

// RunAnalyzers applies every analyzer to one type-checked package and
// returns the surviving diagnostics: suppressions applied, reason-less
// allow comments reported, sorted by position. Shared with the
// analysistest harness so golden tests exercise the production pipeline.
func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet,
	files []*ast.File, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := pass.Analyzer.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sup := suppress.Collect(fset, files)
	diags = sup.Filter(diags)
	diags = append(diags, sup.Problems()...)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	// Dedupe identical findings (an analyzer walking nested closures can
	// reach one site twice).
	kept := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		kept = append(kept, d)
	}
	return kept, nil
}

// RunAnalyzersForTest is the analysistest entry into the production
// diagnostic pipeline (analyzers → suppression filter → allow-comment
// problems).
func RunAnalyzersForTest(analyzers []*analysis.Analyzer, fset *token.FileSet,
	files []*ast.File, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, error) {
	return runAnalyzers(analyzers, fset, files, pkg, info)
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return cfg, nil
}

// typecheck type-checks the package against the export data of its
// already-compiled dependencies, exactly as cmd/vet's unitchecker does.
func typecheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// Resolve a source import path to the canonical package path
		// (vendoring), then to its export data file.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor(cfg.Compiler, build()),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

func build() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
