// Package lint assembles the unprotectedlint invariant suite: the five
// project-specific analyzers that fossilize contracts previous PRs fixed
// by hand, plus the stock-style passes ported onto the suite's stdlib
// framework. The cmd/unprotectedlint binary feeds this list to the
// unitchecker driver; the analysistest corpora exercise each entry
// individually.
//
// The invariant catalogue (what each analyzer enforces, which bug it
// fossilizes, and the PR that first fixed that bug by hand) lives in
// DESIGN.md §12.
package lint

import (
	"unprotectedlint/analysis"
	"unprotectedlint/copylock"
	"unprotectedlint/ctxsend"
	"unprotectedlint/directio"
	"unprotectedlint/maporder"
	"unprotectedlint/nilness"
	"unprotectedlint/poolreturn"
	"unprotectedlint/shadow"
	"unprotectedlint/unusedwrite"
	"unprotectedlint/wallclock"
)

// Suite is every analyzer the unprotectedlint binary runs, in reporting
// order: the five project invariants first, then the stock passes.
var Suite = []*analysis.Analyzer{
	// Project invariants.
	directio.Analyzer,
	maporder.Analyzer,
	wallclock.Analyzer,
	poolreturn.Analyzer,
	ctxsend.Analyzer,
	// Stock passes (native ports; see each package's doc for the subset
	// covered and why x/tools itself is not imported here).
	copylock.Analyzer,
	shadow.Analyzer,
	unusedwrite.Analyzer,
	nilness.Analyzer,
}
