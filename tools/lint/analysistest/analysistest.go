// Package analysistest runs analyzers over golden source corpora, in the
// style of golang.org/x/tools/go/analysis/analysistest: each test package
// lives under testdata/src/<importpath>/, and every line that should be
// flagged carries a trailing
//
//	// want `regexp`
//
// comment (one backquoted or double-quoted regexp per expected
// diagnostic). The harness type-checks the package with the stdlib
// source importer (GOROOT only — corpora import nothing but the standard
// library), pushes it through the same diagnostic pipeline as the vet
// driver (analyzers, then //lint:allow suppression filtering, then
// reason-less-allow reporting), and diffs actual against expected.
//
// Because suppression runs in the harness too, a corpus can prove both
// that an analyzer fires and that its annotations silence it.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"unprotectedlint/analysis"
	"unprotectedlint/unitchecker"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run applies the analyzer to each package path under dir/src and
// reports mismatches between its diagnostics and the // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		runOne(t, dir, a, path)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	pkgDir := filepath.Join(dir, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var fileNames []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(pkgDir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		files = append(files, f)
		fileNames = append(fileNames, name)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", a.Name, pkgDir)
	}

	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := analysis.NewInfo()
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("%s: typecheck %s: %v", a.Name, pkgPath, err)
	}

	diags, err := unitchecker.RunAnalyzersForTest([]*analysis.Analyzer{a}, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	check(t, a.Name, fset, fileNames, diags)
}

// wantRe extracts the expectation patterns from a "// want ..." comment:
// each backquoted or double-quoted string is one expected diagnostic.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one // want entry: a pattern expected to match exactly
// one diagnostic on its line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	raw     string
	matched bool
}

func check(t *testing.T, name string, fset *token.FileSet, fileNames []string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, fname := range fileNames {
		data, err := os.ReadFile(fname)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, after, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, m := range wantRe.FindAllStringSubmatch(after, -1) {
				raw := m[1]
				if m[1] == "" {
					raw = m[2]
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", fname, i+1, raw, err)
				}
				wants = append(wants, &expectation{file: fname, line: i + 1, pattern: re, raw: raw})
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	var unexpected []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			unexpected = append(unexpected, fmt.Sprintf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer))
		}
	}
	for _, u := range unexpected {
		t.Errorf("%s: %s", name, u)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", name, w.file, w.line, w.raw)
		}
	}
}
