// Package nilness covers the flow-free subset of the stock x/tools
// nilness pass (the upstream module is unreachable in this hermetic
// build, and the full pass needs SSA): dereferences that are
// *guaranteed* to panic because they sit inside the true branch of the
// very nil check that proves the value nil.
//
//	if p == nil {
//	    return p.Err()   // flagged: p is provably nil here
//	}
//
// The variable must not be reassigned between the check and the use —
// any write to it inside the branch ends the analysis for that branch.
// Pointer, map, slice, channel, function and interface operands are
// covered (map/slice reads do not panic, but consulting a value the
// branch just proved absent is a logic bug of the same class).
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"unprotectedlint/analysis"
	"unprotectedlint/astwalk"
)

// Analyzer flags uses of a value inside the nil-check branch that proved
// it nil.
var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flag dereference or method call on a variable inside the `if v == nil` branch that proved it nil",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			v := nilCheckedVar(info, ifStmt.Cond)
			if v == nil {
				return true
			}
			checkBranch(pass, ifStmt.Body, v)
			return true
		})
	}
	return nil
}

// nilCheckedVar returns the variable proven nil by `cond` when cond is
// exactly `v == nil` or `nil == v` for a nilable v.
func nilCheckedVar(info *types.Info, cond ast.Expr) *types.Var {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return nil
	}
	operand := bin.X
	if isNilIdent(info, bin.X) {
		operand = bin.Y
	} else if !isNilIdent(info, bin.Y) {
		return nil
	}
	v, ok := astwalk.UsedObject(info, operand).(*types.Var)
	if !ok || !nilable(v.Type()) {
		return nil
	}
	return v
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// checkBranch flags uses of v that consult its value inside the branch,
// stopping at the first reassignment.
func checkBranch(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var) {
	info := pass.TypesInfo
	reassigned := token.Pos(-1)
	ast.Inspect(body, func(n ast.Node) bool {
		if assign, ok := n.(*ast.AssignStmt); ok && reassigned < 0 {
			for _, lhs := range assign.Lhs {
				if astwalk.UsedObject(info, lhs) == v {
					reassigned = assign.Pos()
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned >= 0 && n != nil && n.Pos() >= reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if astwalk.UsedObject(info, n.X) == v {
				pass.Reportf(n.Pos(),
					"%s is provably nil in this branch (checked at the enclosing if); this %s panics or consults a value the check just ruled out",
					v.Name(), describeUse(info, n))
				return false
			}
		case *ast.StarExpr:
			if astwalk.UsedObject(info, n.X) == v {
				pass.Reportf(n.Pos(),
					"*%s dereferences a provably nil pointer (checked at the enclosing if)", v.Name())
				return false
			}
		case *ast.IndexExpr:
			if astwalk.UsedObject(info, n.X) == v {
				pass.Reportf(n.Pos(),
					"indexing %s, provably nil in this branch (checked at the enclosing if)", v.Name())
				return false
			}
		}
		return true
	})
}

func describeUse(info *types.Info, sel *ast.SelectorExpr) string {
	if _, ok := info.Selections[sel]; ok {
		return "selector"
	}
	return "use"
}
