// Package nilness is the nilness golden corpus: uses of a value inside
// the very branch that proved it nil.
package nilness

type t struct{ n int }

func (p *t) fail() error { return nil }

func derefField(p *t) int {
	if p == nil {
		return p.n // want `p is provably nil in this branch`
	}
	return p.n
}

func methodCall(p *t) error {
	if p == nil {
		return p.fail() // want `p is provably nil in this branch`
	}
	return nil
}

func derefStar(p *int) int {
	if p == nil {
		return *p // want `\*p dereferences a provably nil pointer`
	}
	return *p
}

func indexMap(m map[string]int) int {
	if m == nil {
		return m["k"] // want `indexing m, provably nil in this branch`
	}
	return m["k"]
}

func reversedOperands(p *t) int {
	if nil == p {
		return p.n // want `p is provably nil in this branch`
	}
	return p.n
}

// Reassignment inside the branch ends the analysis.
func reassigned(p *t) int {
	if p == nil {
		p = &t{}
		return p.n
	}
	return p.n
}

// The inverse check proves non-nil; nothing to flag.
func okNotNil(p *t) int {
	if p != nil {
		return p.n
	}
	return 0
}

// An allow with a reason suppresses the finding.
func documented(p *t) int {
	if p == nil {
		return p.n //lint:allow nilness intentional panic path exercised by the recovery test harness
	}
	return p.n
}
