package nilness_test

import (
	"testing"

	"unprotectedlint/analysistest"
	"unprotectedlint/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nilness.Analyzer, "a/nilness")
}
