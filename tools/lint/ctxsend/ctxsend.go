// Package ctxsend enforces the goroutine-shutdown contract behind the
// PR 4 leak gates: a worker goroutine that sends on a channel inside a
// loop blocks forever if its consumer stops reading — exactly what
// happens when a consumer breaks out of an iterator or a context is
// cancelled. Every such send must sit in a select that can also take a
// cancellation branch (a ctx.Done()-style receive or a default), so the
// goroutine can always exit.
//
// The analyzer flags a channel send statement when all of these hold:
//
//   - it executes inside a `go func() { ... }()` body,
//   - it is inside a for/range loop within that body, and
//   - neither the send's own select statement nor any select between
//     the loop and the send has an escape branch: a receive case from a
//     Done() call or from a channel whose name suggests cancellation
//     (done/stop/quit/cancel/closing), or a default case.
//
// _test.go files are exempt: test goroutines are bounded by the test's
// own deadline machinery.
package ctxsend

import (
	"go/ast"
	"strings"

	"unprotectedlint/analysis"
	"unprotectedlint/astwalk"
)

// Analyzer flags unguarded in-loop channel sends in goroutines.
var Analyzer = &analysis.Analyzer{
	Name: "ctxsend",
	Doc: "flag goroutine loops that send on a channel without a ctx.Done()-style select escape; " +
		"a blocked send leaks the goroutine when the consumer stops (PR 4 leak class)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		astwalk.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if !inGoroutineLoop(stack) {
				return true
			}
			if guarded(stack) {
				return true
			}
			pass.Reportf(send.Pos(),
				"channel send in a goroutine loop without a cancellation escape: wrap it in select { case ch <- v: case <-ctx.Done(): return } or the goroutine leaks when the consumer stops (PR 4 leak class)")
			return true
		})
	}
	return nil
}

// inGoroutineLoop reports whether the innermost node of stack is inside
// a for/range loop that is itself inside a `go func(){...}()` body —
// without an intervening function literal boundary that would make the
// loop belong to some other function.
func inGoroutineLoop(stack []ast.Node) bool {
	sawLoop := false
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			sawLoop = true
		case *ast.FuncLit:
			// The function boundary: the send executes in this literal.
			// It is a goroutine body iff the literal is directly the
			// called function of a go statement.
			if !sawLoop {
				return false
			}
			if i >= 2 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok && call.Fun == stack[i] {
					_, isGo := stack[i-2].(*ast.GoStmt)
					return isGo
				}
			}
			return false
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}

// guarded reports whether some select statement between the send and its
// enclosing loop (including the select whose comm clause IS the send)
// has an escape branch.
func guarded(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.SelectStmt:
			if hasEscapeClause(n) {
				return true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// hasEscapeClause reports whether the select can take a branch that does
// not block on the guarded send: a default case, a receive from a
// Done()-style call, or a receive from a cancellation-named channel.
func hasEscapeClause(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			return true // default case
		}
		var recvExpr ast.Expr
		switch c := comm.Comm.(type) {
		case *ast.ExprStmt:
			recvExpr = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recvExpr = c.Rhs[0]
			}
		}
		unary, ok := ast.Unparen(recvExpr).(*ast.UnaryExpr)
		if !ok || unary.Op.String() != "<-" {
			continue
		}
		if isCancellationChannel(unary.X) {
			return true
		}
	}
	return false
}

// isCancellationChannel recognizes the cancellation idioms in use across
// the tree: a Done() method call (context.Context and friends), or a
// channel-valued expression whose name suggests shutdown.
func isCancellationChannel(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
	case *ast.Ident:
		return cancellationName(e.Name)
	case *ast.SelectorExpr:
		return cancellationName(e.Sel.Name)
	}
	return false
}

func cancellationName(name string) bool {
	lower := strings.ToLower(name)
	for _, hint := range []string{"done", "stop", "quit", "cancel", "closing", "shutdown"} {
		if strings.Contains(lower, hint) {
			return true
		}
	}
	return false
}
