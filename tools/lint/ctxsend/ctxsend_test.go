package ctxsend_test

import (
	"testing"

	"unprotectedlint/analysistest"
	"unprotectedlint/ctxsend"
)

func TestCtxSend(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxsend.Analyzer, "a/ctxsend")
}
