// Package ctxsend is the ctxsend golden corpus: goroutine loops sending
// on channels with and without a cancellation escape.
package ctxsend

import "context"

func leaky(ch chan int) {
	go func() {
		for i := 0; i < 10; i++ {
			ch <- i // want `without a cancellation escape`
		}
	}()
}

func rangeLeaky(items []int, ch chan int) {
	go func() {
		for _, it := range items {
			ch <- it // want `without a cancellation escape`
		}
	}()
}

// A select with another plain communication case is still unguarded: no
// branch lets the goroutine exit when the consumer stops.
func unguardedSelect(other <-chan int, ch chan int) {
	go func() {
		for i := 0; i < 10; i++ {
			select {
			case ch <- i: // want `without a cancellation escape`
			case v := <-other:
				_ = v
			}
		}
	}()
}

func guardedCtx(ctx context.Context, ch chan int) {
	go func() {
		for i := 0; i < 10; i++ {
			select {
			case ch <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
}

func guardedDoneChan(done <-chan struct{}, ch chan int) {
	go func() {
		for i := 0; i < 10; i++ {
			select {
			case ch <- i:
			case <-done:
				return
			}
		}
	}()
}

func guardedDefault(ch chan int) {
	go func() {
		for i := 0; i < 3; i++ {
			select {
			case ch <- i:
			default:
			}
		}
	}()
}

// Not a goroutine: the caller's own blocking send is its business.
func synchronous(ch chan int) {
	for i := 0; i < 3; i++ {
		ch <- i
	}
}

// A single send outside any loop blocks at most once and is the
// classic buffered-handoff shape; out of scope.
func oneShot(ch chan int) {
	go func() { ch <- 1 }()
}

// An allow with a reason suppresses the finding.
func documented(ch chan int) {
	go func() {
		for i := 0; i < 3; i++ {
			ch <- i //lint:allow ctxsend consumer is this same function and drains fully before returning
		}
	}()
}
