module unprotectedlint

go 1.23
