// Command unprotectedlint runs the repo's invariant suite as a go vet
// tool:
//
//	go build -o bin/unprotectedlint ./tools/lint/cmd/unprotectedlint
//	go vet -vettool=$PWD/bin/unprotectedlint ./...
//
// or, from the repo root, via the consolidated entry point:
//
//	./scripts/lint.sh
//
// Findings are suppressed per line with `//lint:allow <analyzer>
// <reason>`; the reason is mandatory. See DESIGN.md §12 for the
// invariant catalogue.
package main

import (
	lint "unprotectedlint"
	"unprotectedlint/unitchecker"
)

func main() {
	unitchecker.Main(lint.Suite...)
}
