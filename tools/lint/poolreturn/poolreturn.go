// Package poolreturn enforces the pool-ownership contract of PR 6
// (DESIGN.md §9) on every sync.Pool in the tree — in this repo: the
// stream delivery blocks, logstore's extract.Collapser pool, and the
// campaign nodeScratch pool. A pooled value is owned by exactly one
// goroutine between Get and Put; breaking the discipline corrupts a
// *later, unrelated* campaign, which is the hardest class of
// nondeterminism to bisect.
//
// Within the function that calls Get or Put, the analyzer enforces:
//
//   - Reset before Put: if the pooled value's type has a Reset method,
//     the function must call it before the Put — textually before a
//     plain Put, or anywhere in the function for a deferred Put (defer
//     runs at function exit). Types without Reset — deliberately dirty
//     scratch like campaign's nodeScratch, whose grown buffers ARE the
//     point — are exempt from this clause.
//   - No use after Put: after a non-deferred Put(x), x must not be used
//     again until reassigned.
//   - No escape: a value obtained from a pool must not leave the
//     function via return or channel send — except in packages named
//     stream or kway, the delivery layer, whose whole job is moving
//     pooled blocks between the merge and the yield loop.
//
// The analysis is intraprocedural and identifier-based: it follows the
// variable a Get result is bound to, not arbitrary aliases. That is
// exactly the shape of every pool use in this repo, and the limitation
// is the price of running without SSA.
package poolreturn

import (
	"go/ast"
	"go/types"

	"unprotectedlint/analysis"
	"unprotectedlint/astwalk"
)

// Analyzer enforces Reset-before-Put, no-use-after-Put and no-escape for
// sync.Pool values.
var Analyzer = &analysis.Analyzer{
	Name: "poolreturn",
	Doc: "enforce the pool-ownership contract on sync.Pool values: Reset() before Put when the type has one, " +
		"no use after Put, and no escape via return or channel send outside the delivery layer (stream/kway)",
	Run: run,
}

// deliveryPackages may move pooled values across function boundaries.
var deliveryPackages = map[string]bool{"stream": true, "kway": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// Analyze each top-level function once; nested closures are
		// covered by the enclosing function's walk (with deferredness
		// tracked through the stack), so a Put inside a deferred cleanup
		// closure is judged in its defer context, not re-judged as a
		// standalone function.
		astwalk.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				// Reached only outside any FuncDecl (package-level
				// initializer expressions).
				checkFunc(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

type putSite struct {
	call     *ast.CallExpr
	obj      types.Object
	deferred bool
}

// poolCall matches `pool.Get()` / `pool.Put(x)` where pool has type
// sync.Pool or *sync.Pool, returning the method name.
func poolCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name != "Get" && sel.Sel.Name != "Put" {
		return ""
	}
	if !astwalk.IsSyncPoolExpr(info, sel.X) {
		return ""
	}
	return sel.Sel.Name
}

// checkFunc applies the three clauses to one function body, nested
// closures included.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: collect pooled variables (bound Get results and Put
	// arguments), Put sites with their defer context, and Reset sites.
	pooled := make(map[types.Object]bool)
	var puts []putSite
	resets := make(map[types.Object][]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			switch poolCall(info, n) {
			case "Put":
				if len(n.Args) == 1 {
					if obj := astwalk.UsedObject(info, n.Args[0]); obj != nil {
						pooled[obj] = true
						puts = append(puts, putSite{call: n, obj: obj, deferred: inDefer(stack)})
					}
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Reset" && len(n.Args) == 0 {
				if obj := astwalk.UsedObject(info, sel.X); obj != nil {
					resets[obj] = append(resets[obj], n)
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				rhs := n.Rhs[0]
				if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
					rhs = ta.X
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && poolCall(info, call) == "Get" {
					if obj := astwalk.UsedObject(info, n.Lhs[0]); obj != nil {
						pooled[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}

	// Clause 1: Reset before Put for resettable types.
	for _, p := range puts {
		if !astwalk.HasMethod(p.obj.Type(), "Reset") {
			continue
		}
		ok := false
		for _, r := range resets[p.obj] {
			// A deferred Put runs at function exit, after every
			// non-deferred statement: any Reset in the function precedes
			// it dynamically.
			if p.deferred || r.Pos() < p.call.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(p.call.Pos(),
				"pooled %s returned to its pool without %s.Reset(): the next Get sees stale state (pool-ownership contract, DESIGN.md §9)",
				p.obj.Name(), p.obj.Name())
		}
	}

	// Clause 2: no use after a non-deferred Put until reassignment.
	for _, p := range puts {
		if !p.deferred {
			checkUseAfterPut(pass, body, p)
		}
	}

	// Clause 3: no escape via return or channel send outside the
	// delivery layer.
	if !deliveryPackages[pass.Pkg.Name()] {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if obj := astwalk.UsedObject(info, res); obj != nil && pooled[obj] {
						pass.Reportf(res.Pos(),
							"pooled %s escapes via return: ownership leaves the Get/Put scope, so the pool can recycle it while the caller still holds it",
							obj.Name())
					}
				}
			case *ast.SendStmt:
				if obj := astwalk.UsedObject(info, n.Value); obj != nil && pooled[obj] {
					pass.Reportf(n.Value.Pos(),
						"pooled %s escapes via channel send: the receiver and the pool would own it concurrently (only the stream/kway delivery layer may move pooled values)",
						obj.Name())
				}
			}
			return true
		})
	}
}

// inDefer reports whether the innermost node of stack is inside a defer
// statement (directly, or via the deferred call's function literal).
func inDefer(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// checkUseAfterPut flags uses of p.obj in the statements following the
// Put within its enclosing block, stopping at reassignment.
func checkUseAfterPut(pass *analysis.Pass, body *ast.BlockStmt, p putSite) {
	block, idx := enclosingBlockStmt(body, p.call)
	if block == nil {
		return
	}
	for _, stmt := range block.List[idx+1:] {
		reassigned := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if reassigned {
				return false
			}
			if assign, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range assign.Lhs {
					if astwalk.UsedObject(pass.TypesInfo, lhs) == p.obj {
						reassigned = true
						return false
					}
				}
			}
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == p.obj {
				pass.Reportf(id.Pos(),
					"use of pooled %s after Put: another goroutine may already have Got it (pool-ownership contract, DESIGN.md §9)",
					p.obj.Name())
			}
			return true
		})
		if reassigned {
			return
		}
	}
}

// enclosingBlockStmt finds the innermost block whose statement list
// directly contains the expression statement of the Put call, returning
// the block and the statement's index.
func enclosingBlockStmt(body *ast.BlockStmt, call *ast.CallExpr) (*ast.BlockStmt, int) {
	var found *ast.BlockStmt
	foundIdx := -1
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		b, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range b.List {
			if es, ok := stmt.(*ast.ExprStmt); ok && es.X == call {
				found, foundIdx = b, i
				return false
			}
		}
		return true
	})
	return found, foundIdx
}
