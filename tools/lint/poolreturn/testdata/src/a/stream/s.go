// Package stream is named after the repo's delivery layer: moving pooled
// blocks across function boundaries is its whole job, so the escape
// clause does not apply here.
package stream

import "sync"

type block struct{ events []int }

func (b *block) Reset() { b.events = b.events[:0] }

var blockPool = sync.Pool{New: func() any { return new(block) }}

func next() *block {
	b := blockPool.Get().(*block)
	return b
}

func deliver(ch chan *block) {
	b := blockPool.Get().(*block)
	ch <- b
}
