// Package pool is the poolreturn golden corpus: every Get/Put shape the
// ownership contract allows and forbids.
package pool

import "sync"

type Thing struct{ buf []byte }

func (t *Thing) Reset() { t.buf = t.buf[:0] }

var pool = sync.Pool{New: func() any { return new(Thing) }}

func use(*Thing) {}

func noReset() {
	t := pool.Get().(*Thing)
	use(t)
	pool.Put(t) // want `returned to its pool without t\.Reset`
}

func withReset() {
	t := pool.Get().(*Thing)
	use(t)
	t.Reset()
	pool.Put(t)
}

// The repo's canonical shape: a deferred cleanup closure resetting then
// returning the value.
func deferredClosure() {
	t := pool.Get().(*Thing)
	defer func() {
		t.Reset()
		pool.Put(t)
	}()
	use(t)
}

// A deferred Put runs at function exit, so a textually-later Reset still
// precedes it dynamically.
func deferredPutResetLater() {
	t := pool.Get().(*Thing)
	defer pool.Put(t)
	use(t)
	t.Reset()
}

func deferredPutNoReset() {
	t := pool.Get().(*Thing)
	defer pool.Put(t) // want `returned to its pool without t\.Reset`
	use(t)
}

func useAfterPut() {
	t := pool.Get().(*Thing)
	t.Reset()
	pool.Put(t)
	use(t) // want `use of pooled t after Put`
}

// Reassignment ends the pooled lifetime: the new value is not the
// pool's.
func reassigned() {
	t := pool.Get().(*Thing)
	t.Reset()
	pool.Put(t)
	t = new(Thing)
	use(t)
}

func escapeReturn() *Thing {
	t := pool.Get().(*Thing)
	return t // want `pooled t escapes via return`
}

func escapeSend(ch chan *Thing) {
	t := pool.Get().(*Thing)
	ch <- t // want `pooled t escapes via channel send`
}

// Types without a Reset method are deliberately-dirty scratch (the
// campaign nodeScratch shape): no Reset clause applies.
type scratch struct{ n int }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func useScratch(*scratch) {}

func scratchOK() {
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	useScratch(s)
}

// An allow with a reason suppresses the finding: ownership transfer is
// legal when documented.
func handoff() *Thing {
	t := pool.Get().(*Thing)
	return t //lint:allow poolreturn ownership transfers to the caller, which must Reset and Put
}
