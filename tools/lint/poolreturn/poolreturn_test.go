package poolreturn_test

import (
	"testing"

	"unprotectedlint/analysistest"
	"unprotectedlint/poolreturn"
)

func TestPoolReturn(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), poolreturn.Analyzer,
		"a/pool", "a/stream")
}
