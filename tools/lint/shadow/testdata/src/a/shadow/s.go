// Package shadow is the shadow golden corpus: err/ctx shadowing where
// the outer variable is (or is not) read after the inner scope closes.
package shadow

import "context"

func step() error { return nil }

func work(ctx context.Context) error { return ctx.Err() }

type key struct{}

func shadowErr() error {
	err := step()
	if err == nil {
		err := step() // want `shadows the err`
		_ = err
	}
	return err
}

func shadowIfInit() error {
	err := step()
	if err := step(); err != nil { // want `shadows the err`
		_ = err
	}
	return err
}

// No outer err exists: the ubiquitous guard idiom is not flagged.
func okIfErr() error {
	if err := step(); err != nil {
		return err
	}
	return nil
}

// The outer err is never read after the inner scope closes.
func okNoLaterUse() {
	err := step()
	_ = err
	if err := step(); err != nil {
		_ = err
	}
}

func shadowCtx(ctx context.Context) error {
	{
		ctx := context.WithValue(ctx, key{}, 1) // want `shadows the ctx`
		_ = ctx
	}
	return work(ctx)
}

// Rebinding ctx at the top of the body is the standard derive-and-replace
// idiom: the parameter is never read after the new scope closes.
func okRebind(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(ctx)
}

// The accumulate idiom seeds from the current value on purpose: a read
// that is part of an assignment to the same variable is not stale.
func okAccumulate(closers []func() error) (err error) {
	if err := step(); err != nil {
		return err
	}
	for _, c := range closers {
		err = join(err, c())
	}
	return err
}

func join(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// A `:=` re-use after the inner scope refreshes the outer before the
// later read.
func okRefreshedByReuse() error {
	v, err := pair()
	_ = v
	if err := step(); err != nil {
		return err
	}
	w, err := pair()
	_ = w
	return err
}

func pair() (int, error) { return 0, nil }

// A closure parameter named ctx is a signature choice, not an
// accidental capture.
func okClosureParam(ctx context.Context) error {
	f := func(ctx context.Context) error { return work(ctx) }
	if err := f(context.Background()); err != nil {
		return err
	}
	return work(ctx)
}

// An allow with a reason suppresses the finding.
func documented() error {
	err := step()
	if err == nil {
		err := step() //lint:allow shadow inner err is a probe whose failure must not replace the outer result
		_ = err
	}
	return err
}
