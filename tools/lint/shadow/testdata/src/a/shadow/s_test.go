package shadow

// _test.go files are exempt: table-driven tests re-declare err in every
// branch and consult only the inner copies.
func testShape() error {
	err := step()
	if err == nil {
		err := step()
		_ = err
	}
	return err
}
