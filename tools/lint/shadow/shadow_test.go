package shadow_test

import (
	"testing"

	"unprotectedlint/analysistest"
	"unprotectedlint/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), shadow.Analyzer, "a/shadow")
}
