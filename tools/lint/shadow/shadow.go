// Package shadow is the suite's scoped take on the stock x/tools shadow
// pass (the upstream module is unreachable in this hermetic build),
// restricted to the two names whose shadowing has bitten real Go error
// handling and cancellation plumbing: err and ctx. A `:=` that
// re-declares err swallows the outer error; one that re-declares ctx
// detaches everything below it from the caller's cancellation.
//
// To keep the check high-signal it fires only on the genuinely dangerous
// shape, all of which must hold:
//
//   - the inner declaration is a `:=` (an explicit parameter or var
//     declaration named err/ctx is a signature choice, not an accident);
//   - the OUTER variable is read again after the shadowing scope closes
//     — the case where the code visibly consults a value the inner logic
//     believed it had replaced;
//   - no write to the outer variable (assignment, `:=` re-use, or
//     address-taking) lands between the scope's close and that read —
//     a refreshed value is not stale; and
//   - the read is not itself part of an accumulate-assignment to the
//     same variable (`err = errors.Join(err, c())`), which deliberately
//     seeds from the current value.
//
// The ubiquitous `if err := f(); err != nil { return err }` with no
// later read of an outer err is therefore not flagged, and _test.go
// files are exempt (table-driven tests re-declare err in every branch
// and consult only the inner copies).
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"unprotectedlint/analysis"
)

// Analyzer flags := declarations of err and ctx whose shadowed variable
// is read, stale, after the inner scope ends.
var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc: "flag := declarations of err/ctx that shadow an outer variable read (unrefreshed) after the inner scope closes; " +
		"the outer read sees a value the shadowed logic thought it had replaced",
	Run: run,
}

// watched are the identifiers worth policing.
var watched = map[string]bool{"err": true, "ctx": true}

// span is a half-open source interval.
type span struct{ lo, hi token.Pos }

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// One walk gathers, per object: read positions, write positions,
		// the spans of assignments whose LHS includes the object (reads
		// inside those are accumulate-seeds, not stale consults), and the
		// watched `:=` declarations that are shadow candidates.
		uses := make(map[types.Object][]token.Pos)
		writes := make(map[types.Object][]token.Pos)
		selfAssign := make(map[types.Object][]span)
		var candidates []*ast.Ident
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj, ok := info.Uses[n]; ok {
					uses[obj] = append(uses[obj], n.Pos())
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					if obj, ok := info.Uses[id]; ok {
						// Plain `=` or `:=` re-use of an existing variable:
						// a write, and any read inside this statement seeds
						// from the current value on purpose.
						writes[obj] = append(writes[obj], id.Pos())
						selfAssign[obj] = append(selfAssign[obj], span{n.Pos(), n.End()})
					}
					if n.Tok == token.DEFINE && watched[id.Name] {
						if _, ok := info.Defs[id]; ok {
							candidates = append(candidates, id)
						}
					}
				}
			case *ast.UnaryExpr:
				// Address-taking hands the variable to someone who may
				// write it; treat it as a refresh.
				if n.Op == token.AND {
					if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
						if obj, ok := info.Uses[id]; ok {
							writes[obj] = append(writes[obj], id.Pos())
						}
					}
				}
			}
			return true
		})

		for _, id := range candidates {
			inner, ok := info.Defs[id].(*types.Var)
			if !ok {
				continue
			}
			outer := shadowedVar(id, inner)
			if outer == nil {
				continue
			}
			// The inner declaration's scope: the block it lives in. The
			// danger window opens when that scope closes.
			innerScope := inner.Parent()
			if innerScope == nil {
				continue
			}
			scopeEnd := innerScope.End()
			for _, use := range uses[outer] {
				if use <= scopeEnd || insideAny(use, selfAssign[outer]) {
					continue
				}
				if refreshedBefore(use, scopeEnd, writes[outer]) {
					continue
				}
				pass.Reportf(id.Pos(),
					"declaration of %s shadows the %s at %s, which is read again after this scope closes (line %d); rename one of them",
					id.Name, id.Name,
					pass.Fset.Position(outer.Pos()),
					pass.Fset.Position(use).Line)
				break
			}
		}
	}
	return nil
}

// insideAny reports whether pos falls within one of the spans.
func insideAny(pos token.Pos, spans []span) bool {
	for _, s := range spans {
		if pos >= s.lo && pos < s.hi {
			return true
		}
	}
	return false
}

// refreshedBefore reports whether some write lands after the shadowing
// scope closed and before the read.
func refreshedBefore(use, scopeEnd token.Pos, writes []token.Pos) bool {
	for _, w := range writes {
		if w > scopeEnd && w < use {
			return true
		}
	}
	return false
}

// shadowedVar returns the function-local variable that id's declaration
// shadows, or nil: the object a scope lookup at id's position finds in a
// strictly enclosing scope, provided both are ordinary variables in the
// same function body.
func shadowedVar(id *ast.Ident, inner *types.Var) *types.Var {
	scope := inner.Parent()
	if scope == nil || scope.Parent() == nil {
		return nil
	}
	_, obj := scope.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := obj.(*types.Var)
	if !ok || outer == inner || outer.IsField() {
		return nil
	}
	// Only intra-function shadowing: package-level err/ctx variables (or
	// file-scope dot imports) are a different problem class.
	if outer.Parent() == outer.Pkg().Scope() {
		return nil
	}
	// The outer declaration must textually precede the inner one within
	// this file (LookupParent already guarantees visibility).
	if outer.Pos() == token.NoPos || outer.Pos() >= id.Pos() {
		return nil
	}
	return outer
}
