// Package campaign is the wallclock golden corpus: a stand-in for the
// repo's deterministic simulation packages, where wall-clock reads and
// global-rand draws are forbidden.
package campaign

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `time\.Now in a simulation-deterministic package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func draw() int {
	return rand.Intn(100) // want `rand\.Intn draws from the process-global rand source`
}

func drawV2() uint64 {
	return randv2.Uint64() // want `rand\.Uint64 draws from the process-global rand source`
}

// Explicitly seeded generators are the sanctioned form: the
// constructors are exempt, and methods on the stream are exempt.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

func seededV2(a, b uint64) uint64 {
	r := randv2.New(randv2.NewPCG(a, b))
	return r.Uint64()
}

// Deterministic time construction is fine; only wall-clock reads are not.
func epoch() time.Time {
	return time.Unix(0, 0)
}

// An allow with a reason suppresses the finding.
func progressStamp() time.Time {
	return time.Now() //lint:allow wallclock progress logging only, never part of the event stream
}
