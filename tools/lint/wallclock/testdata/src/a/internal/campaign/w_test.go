package campaign

import "time"

// _test.go files may read the wall clock (deadlines, timing asserts).
func testDeadline() time.Time {
	return time.Now().Add(5 * time.Second)
}
