// Package render is outside the deterministic set: report rendering may
// stamp generation time.
package render

import "time"

func generatedAt() time.Time {
	return time.Now()
}
