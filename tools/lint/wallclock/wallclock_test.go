package wallclock_test

import (
	"testing"

	"unprotectedlint/analysistest"
	"unprotectedlint/wallclock"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), wallclock.Analyzer,
		"a/internal/campaign", "a/render")
}
