// Package wallclock enforces the simulation-determinism contract: the
// packages that produce or replay the study's event stream must be pure
// functions of their configuration and seed, because every equivalence
// proof in the tree (byte-identical exports, report-level differential
// tests, the sweep determinism gates) compares their output across runs.
// A wall-clock read or a draw from the global math/rand source makes two
// runs of the same seed diverge — the exact failure mode the paper's
// measured-rate claim cannot survive.
//
// In the deterministic packages the analyzer flags:
//
//   - time.Now and time.Since (Since reads the wall clock implicitly);
//   - every package-level function of math/rand and math/rand/v2 (they
//     draw from the process-global source), and the global-source
//     constructors rand.New(rand.NewSource(time.Now()...)) only via the
//     time.Now rule. Explicitly seeded generators — rand.New(...),
//     rand.NewPCG, rand.NewSource with a config-derived seed — and the
//     repo's own internal/rng streams are the sanctioned alternatives.
//
// _test.go files are exempt (tests may time out on wall clocks), as is
// internal/rng itself, which wraps math/rand/v2 behind seeded streams.
package wallclock

import (
	"go/ast"

	"unprotectedlint/analysis"
	"unprotectedlint/astwalk"
)

// Analyzer flags wall-clock and global-rand reads in deterministic
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "flag time.Now/time.Since and global math/rand use in the simulation-deterministic packages; " +
		"nondeterministic inputs break the byte-identical reproduction contract",
	Run: run,
}

// deterministicPackages must be pure functions of config and seed.
var deterministicPackages = []string{
	"internal/campaign",
	"internal/extract",
	"internal/faults",
	"internal/sched",
	"internal/sweep",
	"internal/core",
	"internal/faultstore",
	"internal/logstore",
}

// seededConstructors are the math/rand entry points that do NOT draw
// from the global source: they build explicitly seeded generators.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !astwalk.PkgPathHasSuffix(pass.Pkg.Path(), deterministicPackages) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astwalk.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if astwalk.ReceiverNamed(fn) != nil {
					return true
				}
				switch fn.Name() {
				case "Now":
					pass.Reportf(call.Pos(),
						"time.Now in a simulation-deterministic package: two runs of one seed diverge; derive time from timebase/config instead")
				case "Since":
					pass.Reportf(call.Pos(),
						"time.Since reads the wall clock implicitly; a deterministic package must compute durations from stream timestamps")
				}
			case "math/rand", "math/rand/v2":
				if astwalk.ReceiverNamed(fn) != nil {
					// Method on an explicit *rand.Rand — a seeded stream,
					// which is the sanctioned form.
					return true
				}
				if !seededConstructors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"%s.%s draws from the process-global rand source: unseeded and nondeterministic; use internal/rng streams derived from the scenario seed",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
