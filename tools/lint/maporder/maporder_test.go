package maporder_test

import (
	"testing"

	"unprotectedlint/analysistest"
	"unprotectedlint/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "a/maporder")
}
