// Package maporder enforces the determinism contract that PR 2 fixed by
// hand (the Accounting.Finish map-order leak): ranging over a map in Go
// visits keys in a deliberately randomized order, so a loop whose body
// accumulates into a slice, writes output, or calls a render/export
// function leaks that order into results that the repo promises are
// byte-identical across runs.
//
// The analyzer flags `for ... range m` over a map when the body
//
//   - appends to a slice declared outside the loop, unless the same
//     function later passes that slice to a sort (sort.* / slices.Sort*)
//     after the loop — the canonical collect-keys-then-sort idiom; or
//   - calls an emitting function: fmt.Print*/Fprint*, or any function or
//     method whose name starts with Write, Print, Render, Export or Emit.
//
// Aggregation that is order-independent — summing into scalars, filling
// another map, taking a max with a total tiebreak — is not flagged.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"unprotectedlint/analysis"
	"unprotectedlint/astwalk"
)

// Analyzer flags order-leaking iteration over maps.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose body appends to a slice (without a later sort), writes output, " +
		"or calls a render/export function: map order is randomized and leaks nondeterminism into results",
	Run: run,
}

var emitPrefixes = []string{"Write", "Print", "Render", "Export", "Emit"}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		astwalk.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rng, stack)
			return true
		})
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	fn := astwalk.EnclosingFunc(stack)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// s = append(s, ...) growing a slice declared outside the loop.
		if target := appendTarget(pass.TypesInfo, call, rng); target != nil {
			if !sortedAfter(pass.TypesInfo, fn, rng, target) {
				pass.Reportf(call.Pos(),
					"append to %s inside map iteration without a later sort: map order is randomized, so the slice's order differs run to run (PR 2 bug class); sort it after the loop or iterate sorted keys",
					target.Name())
			}
			return true
		}
		if name, kind := emitCall(pass.TypesInfo, call); name != "" {
			pass.Reportf(call.Pos(),
				"%s %s inside map iteration emits in randomized map order (PR 2 bug class); collect and sort first",
				kind, name)
		}
		return true
	})
}

// appendTarget returns the object of v in `v = append(v, ...)` when the
// append call is the RHS of an assignment to a variable declared outside
// the range statement; nil otherwise.
func appendTarget(info *types.Info, call *ast.CallExpr, rng *ast.RangeStmt) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if tv, ok := info.Types[call.Fun]; !ok || !tv.IsBuiltin() {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	obj := astwalk.UsedObject(info, call.Args[0])
	if obj == nil {
		return nil
	}
	// Declared outside the loop: its definition precedes the range
	// statement. (An append to a loop-local slice cannot leak order out
	// of one iteration.)
	if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
		return nil
	}
	return obj
}

// sortedAfter reports whether fn contains, after the range statement, a
// call into sort/slices passing target — the collect-then-sort idiom
// that restores determinism.
func sortedAfter(info *types.Info, fn ast.Node, rng *ast.RangeStmt, target types.Object) bool {
	if fn == nil {
		return false
	}
	body := astwalk.FuncBody(fn)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := astwalk.Callee(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		pkg := callee.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if !strings.Contains(callee.Name(), "Sort") && !sortPkgEntry(pkg, callee.Name()) {
			return true
		}
		for _, arg := range call.Args {
			if astwalk.UsedObject(info, arg) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortPkgEntry recognizes the sort-package entry points whose names do
// not contain "Sort": sort.Strings, sort.Ints, sort.Float64s, sort.Stable.
func sortPkgEntry(pkg, name string) bool {
	if pkg != "sort" {
		return false
	}
	switch name {
	case "Strings", "Ints", "Float64s", "Stable", "Slice", "SliceStable":
		return true
	}
	return false
}

// emitCall classifies a call as output-emitting: fmt print family, or a
// callee whose name carries an emitting prefix.
func emitCall(info *types.Info, call *ast.CallExpr) (name, kind string) {
	fn := astwalk.Callee(info, call)
	if fn == nil {
		return "", ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "fmt." + fn.Name(), "call to"
	}
	for _, prefix := range emitPrefixes {
		if strings.HasPrefix(fn.Name(), prefix) {
			if astwalk.ReceiverNamed(fn) != nil {
				return fn.Name(), "method call"
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				// fmt.Sprint* builds a string without emitting; already
				// handled above for the printing family.
				return "", ""
			}
			return fn.Name(), "call to"
		}
	}
	return "", ""
}
