// Package maporder is the maporder golden corpus: loops over maps whose
// bodies leak (or safely contain) the randomized iteration order.
package maporder

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside map iteration without a later sort`
	}
	return out
}

// The canonical collect-keys-then-sort idiom is not flagged.
func appendThenSortStrings(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendThenSlicesSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside map iteration`
	}
}

func methodWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside map iteration`
	}
	return b.String()
}

func RenderRow(k string) string { return k }

// Sprintf builds a string without emitting; building per-entry strings
// is order-independent when the container is.
func aggregate(m map[string]int) (int, map[string]string) {
	sum := 0
	labels := make(map[string]string)
	for k, v := range m {
		sum += v
		labels[k] = fmt.Sprintf("%s=%d", k, v)
	}
	return sum, labels
}

// Appending to a loop-local slice cannot leak order out of an iteration.
func localAppend(m map[string][]string, f func([]string)) {
	for _, vs := range m {
		var local []string
		local = append(local, vs...)
		f(local)
	}
}

// Render-prefixed calls are emitters.
func renders(m map[string]int, sink func(string)) {
	for k := range m {
		sink(RenderRow(k)) // want `RenderRow inside map iteration`
	}
}

// An allow with a reason suppresses the finding.
func allowed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //lint:allow maporder order randomized deliberately to exercise the downstream sorter
	}
	return out
}
