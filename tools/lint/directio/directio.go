// Package directio enforces the storage I/O seam installed by PR 8:
// inside internal/faultstore and internal/logstore, every filesystem
// touch must route through an injectable iofault.FS so the chaos
// harness (crash-point sweeps, torn writes, degraded reads) can reach
// it. A direct os.* call is invisible to the injector — it can never be
// crash-tested, so the crash-consistency proofs silently stop covering
// it.
package directio

import (
	"go/ast"

	"unprotectedlint/analysis"
	"unprotectedlint/astwalk"
)

// Analyzer flags direct os filesystem calls in the storage packages.
var Analyzer = &analysis.Analyzer{
	Name: "directio",
	Doc: "flag direct os.* filesystem calls in internal/faultstore and internal/logstore; " +
		"storage I/O must route through the iofault.FS seam so fault injection covers it",
	Run: run,
}

// scopedPackages are the packages whose I/O the seam must cover.
var scopedPackages = []string{
	"internal/faultstore",
	"internal/logstore",
}

// seamFuncs are the os package-level functions mirrored by iofault.FS.
var seamFuncs = map[string]bool{
	"ReadFile":  true,
	"WriteFile": true,
	"Open":      true,
	"OpenFile":  true,
	"Rename":    true,
	"Remove":    true,
	"MkdirAll":  true,
	"ReadDir":   true,
	"Create":    true,
}

func run(pass *analysis.Pass) error {
	if !astwalk.PkgPathHasSuffix(pass.Pkg.Path(), scopedPackages) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			// Tests build fixtures and inspect raw bytes directly; the
			// seam contract covers production code.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astwalk.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			if seamFuncs[fn.Name()] && astwalk.ReceiverNamed(fn) == nil {
				pass.Reportf(call.Pos(),
					"direct os.%s bypasses the iofault.FS seam; take an iofault.FS and call fs.%s so chaos injection covers this path",
					fn.Name(), fn.Name())
				return true
			}
			if named := astwalk.ReceiverNamed(fn); named != nil &&
				named.Obj().Name() == "File" && fn.Name() == "Sync" {
				pass.Reportf(call.Pos(),
					"direct (*os.File).Sync bypasses the iofault.FS seam; use the seam's File.Sync so torn-write and crash injection cover this fsync")
			}
			return true
		})
	}
	return nil
}
