package directio_test

import (
	"testing"

	"unprotectedlint/analysistest"
	"unprotectedlint/directio"
)

func TestDirectIO(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), directio.Analyzer,
		"a/internal/faultstore", "a/other")
}
