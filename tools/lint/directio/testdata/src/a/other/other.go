// Package other is outside the storage packages, so the seam contract
// does not apply: direct os calls are legal here.
package other

import "os"

func slurp(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func spill(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
