// Package faultstore is the directio golden corpus: a stand-in for the
// repo's internal/faultstore, where every filesystem touch must route
// through the injectable iofault.FS seam.
package faultstore

import "os"

func readShard(path string) ([]byte, error) {
	return os.ReadFile(path) // want `direct os\.ReadFile`
}

func writeShard(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `direct os\.WriteFile`
}

func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644) // want `direct os\.OpenFile`
}

func commit(tmp, final string) error {
	return os.Rename(tmp, final) // want `direct os\.Rename`
}

func syncShard(f *os.File) error {
	return f.Sync() // want `direct \(\*os\.File\)\.Sync`
}

func listShards(dir string) ([]os.DirEntry, error) {
	return os.ReadDir(dir) // want `direct os\.ReadDir`
}

func makeLayout(dir string) error {
	return os.MkdirAll(dir, 0o755) // want `direct os\.MkdirAll`
}

// Process-level queries are not part of the seam; these stay legal.
func shardExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// An allow with a reason suppresses the finding on its own line.
func removeOrphan(path string) error {
	return os.Remove(path) //lint:allow directio orphan cleanup runs before the seam is constructed
}

// An own-line allow with a reason suppresses the line below it.
func removeOrphanOwnLine(path string) error {
	//lint:allow directio orphan cleanup runs before the seam is constructed
	return os.Remove(path)
}

// A reason-less allow suppresses nothing and is itself reported.
func removeBad(path string) error {
	return os.Remove(path) //lint:allow directio // want `direct os\.Remove` `requires a written reason`
}
