package faultstore

import "os"

// _test.go files build fixtures directly; the seam contract covers
// production code only, so none of this is flagged.
func readFixture(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func writeFixture(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
