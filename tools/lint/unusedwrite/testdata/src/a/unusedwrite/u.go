// Package unusedwrite is the unusedwrite golden corpus: field writes
// through copies Go silently discards.
package unusedwrite

type item struct{ n int }

func lostRangeWrite(items []item) {
	for _, it := range items {
		it.n = 1 // want `write to field of by-value range variable it is lost`
	}
}

// The write is read back inside the loop: a used write, not a lost one.
func usedRangeWrite(items []item) int {
	total := 0
	for _, it := range items {
		it.n *= 2
		total += it.n
	}
	return total
}

// Pointers mutate the element itself.
func pointerRange(items []*item) {
	for _, it := range items {
		it.n = 1
	}
}

// Index-based writes reach the real element.
func indexWrite(items []item) {
	for i := range items {
		items[i].n = 1
	}
}

func (i item) lostRecv() {
	i.n = 5 // want `write to field of by-value receiver i is lost at return`
}

// Builder style: the mutated copy is returned, so the write is used.
func (i item) with(n int) item {
	i.n = n
	return i
}

func (i *item) ptrRecv() {
	i.n = 5
}

// An allow with a reason suppresses the finding.
func documented(items []item) {
	for _, it := range items {
		it.n = 1 //lint:allow unusedwrite exercising the copy semantics on purpose in this benchmark body
	}
}
