package unusedwrite_test

import (
	"testing"

	"unprotectedlint/analysistest"
	"unprotectedlint/unusedwrite"
)

func TestUnusedWrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), unusedwrite.Analyzer, "a/unusedwrite")
}
