// Package unusedwrite covers the highest-signal subset of the stock
// x/tools unusedwrite pass (the upstream module is unreachable in this
// hermetic build, and the full pass needs SSA): writes through a copy
// that Go silently discards.
//
// Two shapes are flagged:
//
//   - a field write through a by-value range variable:
//     `for _, v := range s { v.F = x }` mutates v, a copy; the slice
//     element never changes;
//   - a field write through a by-value method receiver:
//     `func (s S) Set() { s.f = x }` mutates the receiver copy, which is
//     discarded at return.
//
// In both shapes the write is only reported when the variable is never
// read again afterwards (builder-style `s.f = x; return s` is a used
// write, not a lost one). Both flagged forms compile silently and both
// have shipped real lost-update bugs.
package unusedwrite

import (
	"go/ast"
	"go/token"
	"go/types"

	"unprotectedlint/analysis"
	"unprotectedlint/astwalk"
)

// Analyzer flags field writes through discarded copies.
var Analyzer = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc: "flag never-read-again field writes through by-value range variables and by-value method receivers; " +
		"the write mutates a copy Go discards",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		astwalk.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range assign.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				v, ok := astwalk.UsedObject(info, sel.X).(*types.Var)
				if !ok {
					continue
				}
				// Writes through pointers mutate the original; only
				// value-typed struct bases lose the write.
				if _, isStruct := v.Type().Underlying().(*types.Struct); !isStruct {
					continue
				}
				if scope := rangeValueScope(info, v, stack); scope != nil {
					if !usedWithin(info, f, v, assign.End(), scope.End()) {
						pass.Reportf(lhs.Pos(),
							"write to field of by-value range variable %s is lost: the loop variable is a copy of the element; range over indices or use a pointer element",
							v.Name())
					}
				} else if decl := valueReceiverDecl(info, v, stack); decl != nil {
					if !usedWithin(info, f, v, assign.End(), decl.End()) {
						pass.Reportf(lhs.Pos(),
							"write to field of by-value receiver %s is lost at return: the receiver is a copy; use a pointer receiver",
							v.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// rangeValueScope returns the enclosing range statement whose by-value
// value variable is v, or nil.
func rangeValueScope(info *types.Info, v *types.Var, stack []ast.Node) *ast.RangeStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		rng, ok := stack[i].(*ast.RangeStmt)
		if !ok {
			continue
		}
		if rng.Value == nil {
			continue
		}
		if id, ok := rng.Value.(*ast.Ident); ok && info.Defs[id] == v {
			return rng
		}
	}
	return nil
}

// valueReceiverDecl returns the enclosing method declaration whose
// non-pointer receiver is v, or nil. A closure boundary ends the search:
// receiver semantics inside closures are out of scope here.
func valueReceiverDecl(info *types.Info, v *types.Var, stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return nil
		case *ast.FuncDecl:
			if n.Recv == nil || len(n.Recv.List) != 1 || len(n.Recv.List[0].Names) != 1 {
				return nil
			}
			recv := info.Defs[n.Recv.List[0].Names[0]]
			if recv == nil || recv != v {
				return nil
			}
			if _, isPtr := recv.Type().(*types.Pointer); isPtr {
				return nil
			}
			return n
		}
	}
	return nil
}

// usedWithin reports whether v is read anywhere in (after, until].
func usedWithin(info *types.Info, f *ast.File, v *types.Var, after, until token.Pos) bool {
	used := false
	ast.Inspect(f, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if info.Uses[id] == v && id.Pos() > after && id.Pos() <= until {
			used = true
		}
		return true
	})
	return used
}
