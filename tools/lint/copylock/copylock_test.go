package copylock_test

import (
	"testing"

	"unprotectedlint/analysistest"
	"unprotectedlint/copylock"
)

func TestCopyLock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), copylock.Analyzer, "a/copylock")
}
