// Package copylock is the copylock golden corpus: by-value copies of
// lock-carrying structs.
package copylock

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func sink(*guarded) {}

func take(guarded) {}

func assignCopy(g *guarded) {
	cp := *g // want `assignment copies lock value`
	sink(&cp)
}

func declCopy(g *guarded) {
	var cp = *g // want `variable declaration copies lock value`
	sink(&cp)
}

func callCopy(g *guarded) {
	take(*g) // want `call passes lock by value`
}

func rangeCopy(gs []guarded) {
	for _, g := range gs { // want `range binds lock by value`
		sink(&g)
	}
}

// Pointers carry no copy; constructing a fresh value is initialization.
func okPointer(gs []*guarded) int {
	total := 0
	for _, g := range gs {
		g.mu.Lock()
		total += g.n
		g.mu.Unlock()
	}
	return total
}

func okInit() *guarded {
	g := guarded{n: 1}
	return &g
}

// An allow with a reason suppresses the finding.
func snapshotAllowed(g *guarded) int {
	cp := *g //lint:allow copylock read-only snapshot taken while the caller holds the lock
	return cp.n
}
