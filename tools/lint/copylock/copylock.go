// Package copylock is the suite's native port of the stock x/tools
// copylocks pass (the upstream module is unreachable in this hermetic
// build): it flags copies of values whose type contains a lock — any
// type with pointer-receiver Lock/Unlock methods, which covers
// sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once, sync.Pool and
// the sync/atomic types via their noCopy fields. A copied lock guards
// nothing: two goroutines each lock their own copy and race on the
// shared state anyway.
//
// Flagged copy sites: assignment from an existing lock-carrying value
// (not composite-literal initialization), passing one by value as a call
// argument, and binding one by value as a range element.
package copylock

import (
	"go/ast"
	"go/types"

	"unprotectedlint/analysis"
)

// Analyzer flags by-value copies of lock-containing types.
var Analyzer = &analysis.Analyzer{
	Name: "copylock",
	Doc:  "flag by-value copies of types containing sync primitives; a copied lock no longer guards the original's state",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) != len(n.Lhs) {
					break
				}
				for i, rhs := range n.Rhs {
					if !copiesExisting(rhs) {
						continue
					}
					if t := lockType(info, rhs); t != "" {
						pass.Reportf(n.Lhs[i].Pos(),
							"assignment copies lock value: %s contains a lock; use a pointer", t)
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if !copiesExisting(v) {
						continue
					}
					if t := lockType(info, v); t != "" {
						pass.Reportf(v.Pos(),
							"variable declaration copies lock value: %s contains a lock; use a pointer", t)
					}
				}
			case *ast.CallExpr:
				if isLenCapLike(info, n) {
					break
				}
				for _, arg := range n.Args {
					if !copiesExisting(arg) {
						continue
					}
					if t := lockType(info, arg); t != "" {
						pass.Reportf(arg.Pos(),
							"call passes lock by value: %s contains a lock; pass a pointer", t)
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					break
				}
				// The value binding is a definition, not an expression use:
				// its type lives in Defs (for `:=`) or Uses (for `=`).
				var vt types.Type
				if id, ok := n.Value.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						vt = obj.Type()
					}
				} else if tv, ok := info.Types[n.Value]; ok {
					vt = tv.Type
				}
				if t := lockTypeOf(vt); t != "" {
					pass.Reportf(n.Value.Pos(),
						"range binds lock by value: %s contains a lock; range over indices or pointers", t)
				}
			}
			return true
		})
	}
	return nil
}

// copiesExisting reports whether evaluating e copies an existing value —
// as opposed to constructing a fresh one (composite literal, call
// result), which is initialization, not an aliasing copy.
func copiesExisting(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// isLenCapLike exempts builtins that do not copy their operand.
func isLenCapLike(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsBuiltin()
}

// lockType returns a printable type name if e's type carries a lock.
func lockType(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok {
		return ""
	}
	return lockTypeOf(tv.Type)
}

// lockTypeOf walks t for a field (transitively) whose pointer method set
// has Lock and Unlock while its value method set does not — the vet
// convention for "must not be copied".
func lockTypeOf(t types.Type) string {
	if t == nil {
		return ""
	}
	seen := make(map[types.Type]bool)
	if containsLock(t, seen) {
		return types.TypeString(t, types.RelativeTo(nil))
	}
	return ""
}

func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isLock(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// isLock reports whether *t has Lock and Unlock but t's value method set
// does not — pointer-receiver lock methods, the no-copy marker.
func isLock(t types.Type) bool {
	if _, isPtr := t.(*types.Pointer); isPtr {
		return false
	}
	ptr := types.NewMethodSet(types.NewPointer(t))
	val := types.NewMethodSet(t)
	return hasLockMethods(ptr) && !hasLockMethods(val)
}

func hasLockMethods(ms *types.MethodSet) bool {
	var lock, unlock bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Lock":
			lock = true
		case "Unlock":
			unlock = true
		}
	}
	return lock && unlock
}
